"""CLI smoke tests: every subcommand runs and prints its table."""

import pytest

from repro.cli import build_parser, main

#: Every subcommand registered in cli.py.  TestCommands must smoke each
#: one (test_every_subcommand_has_smoke_coverage enforces it).
ALL_SUBCOMMANDS = [
    "presets", "simulate", "trace", "latency", "nand-page", "waf-study",
    "fidelity", "compression", "jtag-study", "probe-features", "faultsweep",
    "policies", "policy-grid", "infer", "transparency", "fleet",
    "replay", "engine",
]


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_preset_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "--preset", "warpdrive", "--writes", "10"])

    @pytest.mark.parametrize("command", ALL_SUBCOMMANDS)
    def test_help_available(self, command):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args([command, "--help"])
        assert excinfo.value.code == 0

    def test_subcommand_list_is_complete(self):
        """ALL_SUBCOMMANDS mirrors the parser registry, so adding a
        subcommand without smoke coverage fails here."""
        parser = build_parser()
        actions = [a for a in parser._subparsers._group_actions][0]
        assert sorted(actions.choices) == sorted(ALL_SUBCOMMANDS)


class TestCommands:
    def test_presets(self, capsys):
        assert main(["presets"]) == 0
        out = capsys.readouterr().out
        assert "mx500" in out and "evo840" in out and "vertex2" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "--preset", "tiny", "--scale", "1",
                     "--writes", "3000"]) == 0
        out = capsys.readouterr().out
        assert "FTL_Program_Page_Count" in out
        assert "WAF" in out

    def test_latency(self, capsys):
        assert main(["latency", "--preset", "tiny", "--scale", "1",
                     "--writes", "500"]) == 0
        out = capsys.readouterr().out
        assert "p99 (us)" in out
        assert "closed loop" in out

    def test_latency_open_loop(self, capsys):
        assert main(["latency", "--preset", "tiny", "--scale", "1",
                     "--writes", "500", "--submission", "open",
                     "--rate", "20000"]) == 0
        out = capsys.readouterr().out
        assert "open loop @ 20000 IOPS (poisson)" in out
        assert "p99 (us)" in out

    def test_latency_open_loop_requires_rate(self, capsys):
        assert main(["latency", "--preset", "tiny", "--scale", "1",
                     "--writes", "100", "--submission", "open"]) == 1
        assert "--rate" in capsys.readouterr().out

    def test_nand_page(self, capsys):
        assert main(["nand-page", "--preset", "mx500", "--scale", "4"]) == 0
        out = capsys.readouterr().out
        assert "bytes/page" in out
        assert "converged" in out

    def test_compression(self, capsys):
        assert main(["compression", "--transactions", "400"]) == 0
        out = capsys.readouterr().out
        assert "re-bp32" in out and "chunk4" in out

    def test_jtag_study(self, capsys):
        # The infer harness wraps this gray-box path; the standalone
        # Fig 6 study must keep working as its own entry point.
        assert main(["jtag-study", "--scale", "4"]) == 0
        out = capsys.readouterr().out
        assert "map arrays" in out
        assert "IDCODE" in out

    def test_waf_study(self, capsys):
        assert main(["waf-study", "--preset", "mx500", "--scale", "4",
                     "--io-count", "2000"]) == 0
        out = capsys.readouterr().out
        assert "measured mixed" in out

    def test_probe_features(self, capsys):
        # The infer harness wraps this black-box path; the standalone
        # SSDCheck-style probes must keep working as their own entry
        # point.
        assert main(["probe-features", "--scale", "2",
                     "--cache-sectors", "64", "--writes", "2000"]) == 0
        out = capsys.readouterr().out
        assert "write buffer" in out

    def test_infer(self, capsys):
        assert main(["infer", "--seed", "3", "--mode", "graybox"]) == 0
        out = capsys.readouterr().out
        assert "policy inference (seed 3" in out
        assert "tool loop (graybox" in out
        for knob in ("gc_policy", "allocation", "cache_designation",
                     "cache_admission", "cache_eviction", "wear_policy"):
            assert knob in out

    def test_transparency(self, capsys):
        assert main(["transparency", "--points", "2", "--seed", "1",
                     "--jobs", "1", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "transparency score over 2 random grid points" in out
        assert "gray-box" in out
        assert "recovers strictly more" in out

    def test_policies(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        # One section per registry, every knob present.
        for knob in ("gc_policy", "allocation_scheme", "cache_designation",
                     "cache_admission", "cache_eviction", "wear_policy"):
            assert knob in out
        # New registry-era policies are listed with their one-liners.
        assert "d_choices" in out and "cat" in out and "hotcold" in out
        assert "gc_sample_size" in out  # schema column

    def test_policy_grid(self, capsys):
        assert main(["policy-grid", "--scale", "8", "--io-count", "150",
                     "--jobs", "1", "--no-cache",
                     "--gc", "greedy,d_choices", "--alloc", "CWDP"]) == 0
        out = capsys.readouterr().out
        assert "policy design grid (4 points" in out
        assert "p99 spread across the grid" in out
        assert "d_choices" in out

    def test_fidelity(self, capsys):
        assert main(["fidelity", "--scale", "8", "--io-count", "150"]) == 0
        out = capsys.readouterr().out
        assert "p99 (us)" in out
        assert "p99 spread" in out

    def test_trace_timed(self, capsys, tmp_path):
        out_path = tmp_path / "trace.jsonl"
        assert main(["trace", "--preset", "tiny", "--scale", "1",
                     "--writes", "1000", "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "trace event counts" in out
        assert "host_request" in out
        assert "stall share" in out
        assert out_path.exists()
        from repro.obs import load_trace

        records = load_trace(out_path)
        assert records and all("event" in r for r in records)

    def test_trace_counter_mode(self, capsys, tmp_path):
        out_path = tmp_path / "trace.jsonl"
        assert main(["trace", "--preset", "tiny", "--scale", "1",
                     "--mode", "counter", "--writes", "1000",
                     "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "flash_op" in out
        assert "gc_started" in out
        assert out_path.exists()

    def _write_trace(self, tmp_path, max_lba=700):
        from repro.workloads.trace import BlockTrace, TraceRecord

        trace = BlockTrace([TraceRecord("write", (i * 37) % max_lba, 1,
                                        i * 20.0) for i in range(80)])
        trace.append(TraceRecord("flush", 0, 0, 80 * 20.0))
        return str(trace.save(tmp_path / "trace.csv"))

    def test_replay_timed(self, capsys, tmp_path):
        path = self._write_trace(tmp_path)
        assert main(["replay", "--preset", "tiny", "--scale", "1",
                     "--trace", path, "--time-scale", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "trace replay on tiny" in out
        assert "open loop" in out and "x0.5" in out
        assert "p99 (us)" in out

    def test_replay_closed_loop(self, capsys, tmp_path):
        path = self._write_trace(tmp_path)
        assert main(["replay", "--preset", "tiny", "--scale", "1",
                     "--trace", path, "--submission", "closed",
                     "--iodepth", "4"]) == 0
        assert "closed loop qd=4" in capsys.readouterr().out

    def test_replay_counter_mode(self, capsys, tmp_path):
        path = self._write_trace(tmp_path)
        assert main(["replay", "--preset", "tiny", "--scale", "1",
                     "--trace", path, "--mode", "counter"]) == 0
        out = capsys.readouterr().out
        assert "replayed 81 requests" in out
        assert "WAF" in out

    def test_replay_malformed_trace_exits_nonzero(self, capsys, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("op,lba,sectors,at_us\n"
                        "write,1,1,10.0\nwrite,2,1,5.0\n")
        assert main(["replay", "--preset", "tiny", "--scale", "1",
                     "--trace", str(path)]) == 1
        out = capsys.readouterr().out
        assert "trace line 3" in out and "backwards" in out

    def test_replay_out_of_range_trace_exits_nonzero(self, capsys, tmp_path):
        # LBA 5000 is valid CSV but beyond tiny's 716 sectors
        path = self._write_trace(tmp_path, max_lba=5001)
        assert main(["replay", "--preset", "tiny", "--scale", "1",
                     "--trace", path]) == 1
        assert "outside" in capsys.readouterr().out

    def test_replay_missing_file_exits_nonzero(self, capsys, tmp_path):
        assert main(["replay", "--preset", "tiny", "--scale", "1",
                     "--trace", str(tmp_path / "nope.csv")]) == 1
        assert "cannot read" in capsys.readouterr().out

    def test_replay_empty_trace_exits_nonzero(self, capsys, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("op,lba,sectors,at_us\n")
        assert main(["replay", "--preset", "tiny", "--scale", "1",
                     "--trace", str(path)]) == 1
        assert "no records" in capsys.readouterr().out

    def test_engine(self, capsys):
        assert main(["engine", "--preset", "tiny", "--scale", "1",
                     "--mixes", "a", "--jobs", "1", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "storage engines on tiny" in out
        assert "lsm" in out and "btree" in out
        assert "engine WAF" in out
        assert "all reads returned the latest written version" in out

    def test_engine_alloc_override(self, capsys):
        assert main(["engine", "--preset", "tiny", "--scale", "1",
                     "--engines", "lsm", "--mixes", "c", "--records", "64",
                     "--ops", "100", "--alloc", "hotcold",
                     "--jobs", "1", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "alloc hotcold" in out
        assert "lsm" in out and "btree" not in out

    def test_engine_unknown_axis_rejected(self):
        with pytest.raises(SystemExit):
            main(["engine", "--preset", "tiny", "--scale", "1",
                  "--engines", "fractal", "--jobs", "1", "--no-cache"])
        with pytest.raises(SystemExit):
            main(["engine", "--preset", "tiny", "--scale", "1",
                  "--mixes", "z", "--jobs", "1", "--no-cache"])

    def test_faultsweep(self, capsys):
        assert main(["faultsweep", "--preset", "tiny", "--scale", "1",
                     "--ops", "200", "--strides", "13,47",
                     "--jobs", "1", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "crash-consistency sweep" in out
        assert "all cut points clean" in out

    def test_faultsweep_with_faults(self, capsys):
        assert main(["faultsweep", "--preset", "tiny", "--scale", "1",
                     "--ops", "200", "--strides", "29",
                     "--fault-rate", "0.01",
                     "--jobs", "1", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "all cut points clean" in out

    def test_faultsweep_bad_strides(self, capsys):
        assert main(["faultsweep", "--strides", "1,zap",
                     "--jobs", "1", "--no-cache"]) == 1
        assert "bad --strides" in capsys.readouterr().out

    def test_fleet(self, capsys):
        assert main(["fleet", "--devices", "12", "--io-count", "30",
                     "--jobs", "1", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "fleet SLO report" in out
        assert "SLO verdict" in out
        assert "all tenant SLOs met" in out
        assert "devices/s" in out

    def test_fleet_noisy_mix_violates_slo(self, capsys):
        assert main(["fleet", "--devices", "6", "--io-count", "40",
                     "--mix", "noisy", "--jobs", "1", "--no-cache"]) == 1
        out = capsys.readouterr().out
        assert "SLO VIOLATED" in out
        assert "VIOLATED" in out  # rendered in the per-tenant table too

    def test_fleet_overdriven_rates_violate_slo(self, capsys):
        # Same mix, 20x the arrival rates: open-loop queueing takes over.
        assert main(["fleet", "--devices", "4", "--io-count", "40",
                     "--rate-scale", "20", "--jobs", "1",
                     "--no-cache"]) == 1
        assert "SLO VIOLATED" in capsys.readouterr().out

    def test_fleet_rejects_bad_flags(self, capsys):
        assert main(["fleet", "--devices", "0", "--no-cache"]) == 1
        assert "--devices" in capsys.readouterr().out
        assert main(["fleet", "--shards", "0", "--no-cache"]) == 1
        assert "--shards" in capsys.readouterr().out
        assert main(["fleet", "--rate-scale", "0", "--no-cache"]) == 1
        assert "--rate-scale" in capsys.readouterr().out

    def test_fleet_unknown_mix_rejected(self):
        with pytest.raises(SystemExit):
            main(["fleet", "--mix", "mystery"])

    def test_fleet_campaign(self, capsys):
        assert main(["fleet", "--devices", "8", "--io-count", "30",
                     "--campaign", "default", "--afr", "40",
                     "--jobs", "1", "--no-cache"]) in (0, 1)
        out = capsys.readouterr().out
        assert "campaign" in out
        assert "availability" in out
        assert "durability verdict" in out
        assert "healthy vs faulted latency split" in out

    def test_fleet_afr_requires_campaign(self, capsys):
        assert main(["fleet", "--afr", "0.5", "--no-cache"]) == 1
        assert "--afr needs --campaign" in capsys.readouterr().out

    def test_fleet_only_device_detail(self, capsys):
        assert main(["fleet", "--devices", "8", "--io-count", "30",
                     "--campaign", "default", "--afr", "40",
                     "--only", "0:3", "--jobs", "1", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "fleet device detail [0, 3)" in out
        assert main(["fleet", "--devices", "4", "--only", "9",
                     "--no-cache"]) == 1
        assert "outside" in capsys.readouterr().out

    def test_fleet_resume_reports_cached_shards(self, capsys, tmp_path,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        argv = ["fleet", "--devices", "8", "--io-count", "30",
                "--shards", "2", "--jobs", "1"]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv + ["--resume"]) == 0
        assert "2/2 shards already cached" in capsys.readouterr().out

    def test_fleet_resume_requires_cache(self, capsys):
        assert main(["fleet", "--devices", "4", "--io-count", "30",
                     "--resume", "--no-cache", "--jobs", "1"]) == 1
        assert "--resume needs the result cache" in capsys.readouterr().out

    def test_every_subcommand_has_smoke_coverage(self):
        """Each subcommand in cli.py has a TestCommands smoke test."""
        covered = {
            "presets", "simulate", "trace", "latency", "nand-page",
            "waf-study", "fidelity", "compression", "jtag-study",
            "probe-features", "faultsweep", "policies", "policy-grid",
            "infer", "transparency", "fleet", "replay", "engine",
        }
        assert covered == set(ALL_SUBCOMMANDS)
