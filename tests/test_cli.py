"""CLI smoke tests: every subcommand runs and prints its table."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_preset_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "--preset", "warpdrive", "--writes", "10"])

    @pytest.mark.parametrize("command", [
        "presets", "simulate", "latency", "nand-page", "waf-study",
        "fidelity", "compression", "jtag-study", "probe-features",
    ])
    def test_help_available(self, command):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args([command, "--help"])
        assert excinfo.value.code == 0


class TestCommands:
    def test_presets(self, capsys):
        assert main(["presets"]) == 0
        out = capsys.readouterr().out
        assert "mx500" in out and "evo840" in out and "vertex2" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "--preset", "tiny", "--scale", "1",
                     "--writes", "3000"]) == 0
        out = capsys.readouterr().out
        assert "FTL_Program_Page_Count" in out
        assert "WAF" in out

    def test_latency(self, capsys):
        assert main(["latency", "--preset", "tiny", "--scale", "1",
                     "--writes", "500"]) == 0
        out = capsys.readouterr().out
        assert "p99 (us)" in out

    def test_nand_page(self, capsys):
        assert main(["nand-page", "--preset", "mx500", "--scale", "4"]) == 0
        out = capsys.readouterr().out
        assert "bytes/page" in out
        assert "converged" in out

    def test_compression(self, capsys):
        assert main(["compression", "--transactions", "400"]) == 0
        out = capsys.readouterr().out
        assert "re-bp32" in out and "chunk4" in out

    def test_jtag_study(self, capsys):
        assert main(["jtag-study", "--scale", "4"]) == 0
        out = capsys.readouterr().out
        assert "map arrays" in out
        assert "IDCODE" in out

    def test_waf_study(self, capsys):
        assert main(["waf-study", "--preset", "mx500", "--scale", "4",
                     "--io-count", "2000"]) == 0
        out = capsys.readouterr().out
        assert "measured mixed" in out

    def test_probe_features(self, capsys):
        assert main(["probe-features", "--scale", "2",
                     "--cache-sectors", "64", "--writes", "2000"]) == 0
        out = capsys.readouterr().out
        assert "write buffer" in out
