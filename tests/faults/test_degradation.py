"""Graceful degradation: retry ladder, RAIN rebuild, retirement, RO mode."""

import pytest

from repro.flash.errors import ReliabilityModel
from repro.faults import FaultPlan, FaultSpec, PlannedFaultInjector
from repro.obs import CounterSink
from repro.ssd.ftl import Ftl, ReadOnlyError
from repro.ssd.presets import tiny

#: same deliberately fragile flash as the reliability tests: cold data
#: rots out of the ECC budget after ~5 simulated days.
FRAGILE = ReliabilityModel(
    base_rber=1e-7,
    rated_cycles=200,
    retention_rber_per_day=1e-3,
    ecc_correctable=40,
)


def _faulted_ftl(config, *specs, seed=5, sink=None):
    injector = PlannedFaultInjector(FaultPlan(seed=seed, specs=specs),
                                    config.geometry)
    ftl = Ftl(config, injector=injector)
    if sink is not None:
        ftl.attach_sink(sink)
    return ftl, injector


class TestReadRetryLadder:
    def _aged(self, read_retry_steps):
        config = tiny().with_changes(ops_per_day=100,
                                     read_retry_steps=read_retry_steps)
        ftl = Ftl(config, reliability=FRAGILE)
        for lpn in range(32):
            ftl.write(lpn)
        ftl.flush()
        for i in range(1000):
            ftl.write(32 + i % (ftl.num_lpns - 32))
        ftl.flush()
        return ftl

    def test_retries_cure_soft_uncorrectables(self):
        # Each retry step halves the effective raw error rate; enough
        # steps bring aged-but-soft data back inside the ECC budget.
        ftl = self._aged(read_retry_steps=8)
        for lpn in range(32):
            ftl.read(lpn)
        assert ftl.stats.read_retries > 0
        assert ftl.stats.uncorrectable_reads == 0

    def test_no_retries_without_the_knob(self):
        ftl = self._aged(read_retry_steps=0)
        for lpn in range(32):
            ftl.read(lpn)
        assert ftl.stats.read_retries == 0
        assert ftl.stats.uncorrectable_reads > 0

    def test_retry_events_typed(self):
        sink = CounterSink()
        ftl = self._aged(read_retry_steps=8)
        ftl.attach_sink(sink)
        for lpn in range(32):
            ftl.read(lpn)
        assert sink.count("read_retry") == ftl.stats.read_retries

    def test_hard_faults_never_retry_curable(self):
        # An injected (hard) uncorrectable read is physical damage: the
        # ladder runs, fails, and without RAIN the read is lost.
        config = tiny().with_changes(read_retry_steps=3)
        ftl, _ = _faulted_ftl(
            config, FaultSpec("uncorrectable_read", lpns=(0, 1), count=1))
        ftl.write(0)
        ftl.flush()
        ftl.read(0)
        assert ftl.stats.read_retries == 3
        assert ftl.stats.uncorrectable_reads == 1
        assert ftl.stats.rain_reconstructions == 0


class TestRainReconstruction:
    def test_uncorrectable_read_served_via_rain(self):
        sink = CounterSink()
        config = tiny().with_changes(rain_stripe=4, read_retry_steps=2)
        ftl, injector = _faulted_ftl(
            config,
            FaultSpec("uncorrectable_read", lpns=(5, 6), count=1),
            sink=sink,
        )
        for lpn in range(16):
            ftl.write(lpn)
        ftl.flush()
        ftl.read(5)
        assert ftl.stats.rain_reconstructions == 1
        assert ftl.stats.relocated_sectors == 1
        assert ftl.stats.uncorrectable_reads == 0
        assert sink.count("rain_reconstruction") == 1
        assert sink.count("fault_injected") == 1
        # The stripe peers were actually read to rebuild the page.
        assert sink.total("rain_reconstruction") > 0
        # The failing copy is no longer load-bearing: the next read of
        # the same sector hits the relocated page and is clean.
        before = len(injector.log)
        ftl.read(5)
        assert ftl.stats.rain_reconstructions == 1
        assert len(injector.log) == before

    def test_without_rain_sector_is_lost(self):
        config = tiny().with_changes(read_retry_steps=2)
        ftl, _ = _faulted_ftl(
            config, FaultSpec("uncorrectable_read", lpns=(5, 6), count=1))
        for lpn in range(16):
            ftl.write(lpn)
        ftl.flush()
        ftl.read(5)
        assert ftl.stats.rain_reconstructions == 0
        assert ftl.stats.uncorrectable_reads == 1


class TestBlockRetirement:
    def test_program_fail_retires_and_emits(self):
        sink = CounterSink()
        config = tiny()
        ftl, injector = _faulted_ftl(
            config, FaultSpec("program_fail", at_op=10, count=1), sink=sink)
        for lpn in range(64):
            ftl.write(lpn % ftl.num_lpns)
        ftl.flush()
        assert ftl.stats.blocks_retired == 1
        assert injector.injected_counts()["program_fail"] == 1
        assert sink.count("block_retired") == 1

    def test_retired_blocks_reduce_spares(self):
        config = tiny()
        clean = Ftl(config)
        ftl, _ = _faulted_ftl(
            config, FaultSpec("program_fail", at_op=10, count=2))
        for lpn in range(64):
            ftl.write(lpn % ftl.num_lpns)
        ftl.flush()
        assert ftl.spare_blocks() == clean.spare_blocks() - 2


class TestReadOnlyMode:
    def _exhaust(self):
        sink = CounterSink()
        config = tiny().with_changes(spare_blocks_min=20)
        ftl, _ = _faulted_ftl(
            config,
            FaultSpec("program_fail", probability=0.10, count=0),
            sink=sink,
        )
        with pytest.raises(ReadOnlyError):
            for i in range(4000):
                ftl.write(i % ftl.num_lpns)
        return ftl, sink

    def test_spare_exhaustion_trips_read_only(self):
        ftl, sink = self._exhaust()
        assert ftl.degraded_read_only
        assert ftl.spare_blocks() < 20
        assert sink.count("degraded_mode") == 1

    def test_read_only_still_reads_and_flushes(self):
        ftl, _ = self._exhaust()
        ftl.flush()
        ftl.read(0)
        with pytest.raises(ReadOnlyError):
            ftl.write(0)
        with pytest.raises(ReadOnlyError):
            ftl.trim(0)
