"""Fault-injection subsystem tests."""
