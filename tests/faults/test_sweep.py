"""Crash-consistency sweep: the durability contract holds at every cut."""

import pytest

from repro.exp import Cell, Runner
from repro.faults import (
    CrashSweepCell,
    FaultPlan,
    FaultSpec,
    SweepWorkload,
    host_ops,
    run_crash_sweep_cell,
)
from repro.ssd.presets import tiny

WORKLOAD = SweepWorkload(ops=300, seed=7)


def _cell(stride, plan=None, workload=WORKLOAD):
    return CrashSweepCell(tiny(), workload, stride, plan=plan)


class TestWorkload:
    def test_stream_is_deterministic(self):
        assert host_ops(WORKLOAD, 512) == host_ops(WORKLOAD, 512)

    def test_stream_respects_fractions(self):
        ops = host_ops(SweepWorkload(ops=2000, seed=1, write_frac=1.0,
                                     trim_frac=0.0), 512)
        assert all(kind == "write" for kind, _, _ in ops)

    def test_validation(self):
        with pytest.raises(ValueError):
            SweepWorkload(ops=0)
        with pytest.raises(ValueError):
            SweepWorkload(write_frac=0.9, trim_frac=0.2)
        with pytest.raises(ValueError):
            CrashSweepCell(tiny(), WORKLOAD, stride=0)


class TestCleanSweep:
    @pytest.mark.parametrize("stride", [1, 7, 31])
    def test_no_loss_at_any_cut_point(self, stride):
        result = run_crash_sweep_cell(_cell(stride))
        assert result.ops_run == WORKLOAD.ops
        assert result.cuts == WORKLOAD.ops // stride
        assert result.clean, result.detail
        assert result.lost_sectors == 0
        assert result.ghost_sectors == 0
        assert result.recovery_failures == 0

    def test_trim_resurrection_is_counted_not_hidden(self):
        # Trims write nothing to flash, so replay legitimately revives
        # them — the contract requires this be *visible*, not absent.
        result = run_crash_sweep_cell(_cell(7))
        assert result.resurrected_trims > 0


class TestFaultedSweep:
    PLAN = FaultPlan(seed=3, specs=(
        FaultSpec("program_fail", probability=0.01, count=0),
        FaultSpec("erase_fail", probability=0.01, count=0),
    ))

    def test_contract_holds_under_grown_bad_blocks(self):
        result = run_crash_sweep_cell(_cell(13, plan=self.PLAN))
        assert result.clean, result.detail
        assert result.blocks_retired > 0
        assert len(result.fault_log) > 0

    def test_power_cut_specs_are_stripped(self):
        # The sweep owns cut placement; a plan's power cuts must not
        # fire inside the workload loop.
        plan = FaultPlan(seed=3, specs=(FaultSpec("power_cut", at_op=5),))
        result = run_crash_sweep_cell(_cell(50, plan=plan))
        assert result.fault_log == ()
        assert result.clean


class TestReproducibility:
    def test_same_spec_byte_identical_result(self):
        spec = _cell(11, plan=TestFaultedSweep.PLAN)
        assert run_crash_sweep_cell(spec) == run_crash_sweep_cell(spec)

    def test_jobs_one_equals_jobs_four(self):
        cells = [
            Cell(run_crash_sweep_cell,
                 _cell(stride, plan=TestFaultedSweep.PLAN),
                 label=f"k={stride}")
            for stride in (17, 29, 43, 61)
        ]
        serial = Runner(jobs=1).run(cells)
        parallel = Runner(jobs=4).run(cells)
        assert serial == parallel
        assert all(r.fault_log == s.fault_log
                   for r, s in zip(parallel, serial))
