"""FaultPlan / FaultSpec: validation, triggers, hashing, pickling."""

import pickle

import pytest

from repro.exp.hashing import stable_digest
from repro.faults import FAULT_KINDS, FaultPlan, FaultSpec


class TestSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("disk_on_fire")

    def test_all_known_kinds_accepted(self):
        for kind in FAULT_KINDS:
            kwargs = {}
            if kind == "die_offline":
                kwargs["die"] = 0
            if kind == "power_cut":
                kwargs["at_op"] = 10
            FaultSpec(kind, **kwargs)

    def test_probability_bounds(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec("program_fail", probability=1.5)
        with pytest.raises(ValueError, match="probability"):
            FaultSpec("program_fail", probability=-0.1)

    def test_die_offline_needs_die(self):
        with pytest.raises(ValueError, match="target die"):
            FaultSpec("die_offline")

    def test_power_cut_needs_trigger(self):
        with pytest.raises(ValueError, match="power_cut"):
            FaultSpec("power_cut")

    def test_empty_address_range_rejected(self):
        with pytest.raises(ValueError, match="blocks"):
            FaultSpec("program_fail", blocks=(5, 5))
        with pytest.raises(ValueError, match="lpns"):
            FaultSpec("uncorrectable_read", lpns=(9, 3))

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="count"):
            FaultSpec("program_fail", count=-1)


class TestTriggers:
    def test_armed_immediately_when_no_trigger(self):
        assert FaultSpec("program_fail").armed_immediately
        assert not FaultSpec("program_fail", at_op=5).armed_immediately
        assert not FaultSpec("program_fail", probability=0.5).armed_immediately

    def test_address_predicates(self):
        spec = FaultSpec("uncorrectable_read", blocks=(2, 4), lpns=(10, 20))
        assert spec.matches_block(2) and spec.matches_block(3)
        assert not spec.matches_block(4)
        assert spec.matches_lpn(10) and not spec.matches_lpn(20)

    def test_none_predicates_match_everything(self):
        spec = FaultSpec("program_fail")
        assert spec.matches_block(0) and spec.matches_block(10**6)
        assert spec.matches_lpn(0) and spec.matches_lpn(10**6)


class TestPlan:
    def test_of_kind_filters(self):
        plan = FaultPlan(specs=(
            FaultSpec("program_fail"),
            FaultSpec("erase_fail"),
            FaultSpec("program_fail", at_op=9),
        ))
        assert len(plan.of_kind("program_fail")) == 2
        assert len(plan.of_kind("erase_fail")) == 1
        assert plan.of_kind("power_cut") == ()

    def test_without_power_cuts(self):
        plan = FaultPlan(seed=3, specs=(
            FaultSpec("power_cut", at_op=100),
            FaultSpec("program_fail"),
        ))
        assert plan.has_power_cut
        stripped = plan.without_power_cuts()
        assert not stripped.has_power_cut
        assert stripped.seed == 3
        assert len(stripped.specs) == 1

    def test_plan_is_picklable_and_hashable(self):
        plan = FaultPlan(seed=1, specs=(FaultSpec("erase_fail", count=0),))
        assert pickle.loads(pickle.dumps(plan)) == plan
        assert hash(plan) == hash(pickle.loads(pickle.dumps(plan)))

    def test_plan_digest_is_stable(self):
        # Plans take part in exp cache keys: equal plans, equal digests.
        a = FaultPlan(seed=2, specs=(FaultSpec("program_fail", at_op=4),))
        b = FaultPlan(seed=2, specs=(FaultSpec("program_fail", at_op=4),))
        assert stable_digest(a) == stable_digest(b)
        c = FaultPlan(seed=3, specs=(FaultSpec("program_fail", at_op=4),))
        assert stable_digest(a) != stable_digest(c)
