"""Property: no fault plan (short of power loss) loses acknowledged data.

Hypothesis drives random host workloads against random no-power-cut
fault plans on a RAIN-protected device and asserts the two robustness
invariants end to end:

1. every sector the host wrote (and did not later trim) is still
   mapped and readable — grown bad blocks, erase failures, and
   uncorrectable reads must degrade service, never lose it;
2. the SMART degradation counters reconcile *exactly* with the typed
   obs events the machinery emitted — the black-box story and the
   white-box story are the same story.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultPlan, FaultSpec, PlannedFaultInjector
from repro.obs import CounterSink
from repro.ssd.device import SimulatedSSD
from repro.ssd.ftl import ReadOnlyError
from repro.ssd.mapping import UNMAPPED
from repro.ssd.presets import tiny

#: bounded so hypothesis examples stay sub-second on the tiny preset.
MAX_OPS = 120

# probability floors keep specs genuinely probabilistic: probability=0
# means "armed immediately", which with count=0 is "every op fails
# forever" — a bricked part, not a fault model worth testing.
specs = st.one_of(
    st.builds(
        FaultSpec,
        kind=st.just("program_fail"),
        probability=st.floats(0.001, 0.01),
        count=st.integers(0, 2),
    ),
    st.builds(
        FaultSpec,
        kind=st.just("erase_fail"),
        probability=st.floats(0.001, 0.01),
        count=st.integers(0, 2),
    ),
    st.builds(
        FaultSpec,
        kind=st.just("uncorrectable_read"),
        probability=st.floats(0.001, 0.05),
        count=st.integers(0, 3),
        lpns=st.one_of(st.none(), st.just((0, 64))),
    ),
)

plans = st.builds(
    FaultPlan,
    seed=st.integers(0, 2**16),
    specs=st.lists(specs, max_size=3).map(tuple),
)

workloads = st.lists(
    st.tuples(
        st.sampled_from(["write", "write", "write", "trim", "read"]),
        st.integers(0, 500),
        st.integers(1, 4),
    ),
    min_size=10,
    max_size=MAX_OPS,
)


@settings(max_examples=25, deadline=None)
@given(plan=plans, ops=workloads)
def test_no_acknowledged_write_lost_and_counters_reconcile(plan, ops):
    config = tiny().with_changes(rain_stripe=4, read_retry_steps=2)
    injector = PlannedFaultInjector(plan, config.geometry)
    device = SimulatedSSD(config, injector=injector)
    sink = CounterSink()
    device.attach_sink(sink)

    written: set[int] = set()
    trimmed: set[int] = set()
    try:
        for kind, lba, count in ops:
            lba = min(lba, device.num_sectors - count)
            span = set(range(lba, lba + count))
            if kind == "write":
                device.write_sectors(lba, count)
                written |= span
                trimmed -= span
            elif kind == "trim":
                device.trim_sectors(lba, count)
                trimmed |= span
            else:
                device.read_sectors(lba, count)
        device.flush()
    except ReadOnlyError:
        pass  # spare exhaustion is graceful degradation, not data loss
    else:
        # Invariant 1 holds only for acknowledged operations: reaching
        # here means every op (and the final flush) was acknowledged.
        ftl = device.ftl
        mapped = set(
            int(lpn) for lpn in np.nonzero(ftl.mapping.l2p != UNMAPPED)[0]
        )
        mapped |= set(ftl.pslc.index.keys())
        must = written - trimmed
        assert must <= mapped, f"lost sectors: {sorted(must - mapped)[:5]}"
        # Every live sector is also still readable (reads may retry or
        # rebuild, but must not raise).
        for lpn in sorted(must)[:32]:
            device.read_sectors(lpn, 1)

    # Invariant 2: SMART derived counters == typed obs event counts ==
    # injector ground truth, exactly.
    smart = device.smart_snapshot()
    stats = device.ftl.stats
    assert smart.grown_bad_blocks == stats.blocks_retired
    assert smart.grown_bad_blocks == sink.count("block_retired")
    assert smart.relocated_sectors == stats.relocated_sectors
    assert smart.rain_reconstructions == stats.rain_reconstructions
    assert smart.rain_reconstructions == sink.count("rain_reconstruction")
    assert smart.read_retries == stats.read_retries
    assert smart.read_retries == sink.count("read_retry")
    assert sink.count("fault_injected") == len(injector.log)
    assert stats.relocated_sectors == stats.rain_reconstructions
