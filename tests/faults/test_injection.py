"""PlannedFaultInjector: determinism, triggers, predicates, accounting."""

from repro.faults import FaultPlan, FaultSpec, PlannedFaultInjector
from repro.ssd.presets import tiny

GEOMETRY = tiny().geometry


def _injector(*specs, seed=5):
    return PlannedFaultInjector(FaultPlan(seed=seed, specs=specs), GEOMETRY)


class TestDeterminism:
    def test_same_plan_same_schedule(self):
        def run():
            inj = _injector(
                FaultSpec("program_fail", probability=0.3, count=0),
                FaultSpec("uncorrectable_read", probability=0.2, count=0),
            )
            for ppn in range(200):
                inj.program_fails(ppn)
                inj.read_uncorrectable(ppn, lpn=ppn % 64)
            return tuple(inj.log)

        assert run() == run()
        assert len(run()) > 0

    def test_different_seed_different_schedule(self):
        def run(seed):
            inj = _injector(
                FaultSpec("program_fail", probability=0.3, count=0),
                seed=seed)
            return tuple(ppn for ppn in range(200) if inj.program_fails(ppn))

        assert run(1) != run(2)

    def test_log_records_in_firing_order(self):
        inj = _injector(FaultSpec("program_fail", count=2))
        fired = [ppn for ppn in range(10) if inj.program_fails(ppn)]
        assert fired == [0, 1]  # immediately-armed, count-bounded
        assert [t for _, t, _ in inj.log] == [0, 1]


class TestTriggers:
    def test_at_op_arms_via_tick(self):
        inj = _injector(FaultSpec("erase_fail", at_op=5, count=1))
        inj.tick(4)
        assert not inj.erase_fails(0)
        inj.tick(5)
        assert inj.erase_fails(1)
        assert not inj.erase_fails(2)  # count exhausted

    def test_at_time_arms_via_tick(self):
        inj = _injector(FaultSpec("program_fail", at_time_ns=1000, count=1))
        inj.tick(1, now_ns=999)
        assert not inj.program_fails(0)
        inj.tick(2, now_ns=1000)
        assert inj.program_fails(0)

    def test_block_predicate_restricts(self):
        pages = GEOMETRY.pages_per_block
        inj = _injector(FaultSpec("program_fail", blocks=(3, 4), count=0))
        assert not inj.program_fails(0)
        assert inj.program_fails(3 * pages)
        assert not inj.program_fails(4 * pages)

    def test_lpn_predicate_restricts_reads(self):
        inj = _injector(
            FaultSpec("uncorrectable_read", lpns=(10, 12), count=0))
        assert not inj.read_uncorrectable(0, lpn=9)
        assert inj.read_uncorrectable(0, lpn=10)
        assert not inj.read_uncorrectable(0, lpn=12)


class TestDieOffline:
    def test_offline_die_fails_everything_on_it(self):
        inj = _injector(FaultSpec("die_offline", die=0, at_op=3))
        assert not inj.program_fails(0)
        inj.tick(3)
        assert inj.offline_dies == frozenset({0})
        ppn_on_die0 = 0
        assert GEOMETRY.die_of_ppn(ppn_on_die0) == 0
        assert inj.program_fails(ppn_on_die0)
        assert inj.read_uncorrectable(ppn_on_die0)
        # A block on another die is unaffected.
        other = next(b for b in range(GEOMETRY.total_blocks)
                     if GEOMETRY.die_of_block(b) != 0)
        assert not inj.erase_fails(other)


class TestPowerCut:
    def test_power_cut_pending_after_trigger(self):
        inj = _injector(FaultSpec("power_cut", at_op=7))
        inj.tick(6)
        assert not inj.power_cut_pending()
        inj.tick(7)
        assert inj.power_cut_pending()


class TestAccounting:
    def test_injected_counts_reconcile_with_log(self):
        inj = _injector(
            FaultSpec("program_fail", probability=0.4, count=0),
            FaultSpec("erase_fail", probability=0.4, count=0),
        )
        for i in range(100):
            inj.program_fails(i)
            inj.erase_fails(i % GEOMETRY.total_blocks)
        counts = inj.injected_counts()
        assert sum(counts.values()) == len(inj.log)
        assert counts["program_fail"] == inj.program_failures
        assert counts["erase_fail"] == inj.erase_failures
