"""Block-trace recording, persistence, and replay."""

import numpy as np
import pytest

from repro.ssd.device import SimulatedSSD
from repro.ssd.presets import tiny
from repro.ssd.timed import TimedSSD
from repro.workloads.trace import (
    BlockTrace,
    TraceFormatError,
    TraceRecord,
    TraceRecorder,
    replay_counter,
    replay_timed,
)


class TestTraceRecord:
    def test_validation(self):
        with pytest.raises(ValueError):
            TraceRecord("scrub", 0, 1, 0.0)
        with pytest.raises(ValueError):
            TraceRecord("write", -1, 1, 0.0)


class TestBlockTrace:
    def test_append_monotone(self):
        trace = BlockTrace()
        trace.append(TraceRecord("write", 0, 1, 0.0))
        trace.append(TraceRecord("write", 1, 1, 5.0))
        with pytest.raises(ValueError):
            trace.append(TraceRecord("write", 2, 1, 1.0))

    def test_roundtrip_text(self):
        trace = BlockTrace([
            TraceRecord("write", 10, 4, 0.0),
            TraceRecord("read", 10, 4, 20.5),
            TraceRecord("trim", 10, 4, 40.0),
            TraceRecord("flush", 0, 0, 60.0),
        ])
        loaded = BlockTrace.loads(trace.dumps())
        assert loaded.records == trace.records
        assert loaded.duration_us == 60.0
        assert loaded.sectors_written() == 4

    def test_roundtrip_file(self, tmp_path):
        trace = BlockTrace([TraceRecord("write", 1, 1, 0.0)])
        path = trace.save(tmp_path / "t" / "trace.csv")
        assert BlockTrace.load(path).records == trace.records

    def test_bad_header_rejected(self):
        with pytest.raises(ValueError):
            BlockTrace.loads("nope,nope\n1,2\n")


class TestRecorder:
    def test_records_and_passes_through(self):
        device = SimulatedSSD(tiny())
        recorder = TraceRecorder(device, rate_iops=10_000)
        recorder.write_sectors(0, 2)
        recorder.read_sectors(0, 1)
        recorder.trim_sectors(0, 1)
        recorder.flush()
        assert [r.kind for r in recorder.trace] == [
            "write", "read", "trim", "flush",
        ]
        assert device.smart.host_sectors_written == 2
        # Synthesized timestamps advance at the configured rate.
        times = [r.at_us for r in recorder.trace]
        assert times == sorted(times)
        assert times[1] - times[0] == pytest.approx(100.0)


class TestReplay:
    def make_trace(self, device, requests=300, seed=5):
        recorder = TraceRecorder(device, rate_iops=20_000)
        rng = np.random.default_rng(seed)
        for _ in range(requests):
            recorder.write_sectors(int(rng.integers(device.num_sectors)), 1)
        recorder.flush()
        return recorder.trace

    def test_counter_replay_reproduces_smart(self):
        source = SimulatedSSD(tiny())
        trace = self.make_trace(source)
        target = SimulatedSSD(tiny())
        replay_counter(trace, target)
        assert target.smart.host_program_pages == source.smart.host_program_pages
        assert target.smart.ftl_program_pages == source.smart.ftl_program_pages

    def test_timed_replay_honours_arrivals(self):
        device = SimulatedSSD(tiny())
        trace = self.make_trace(device, requests=100)
        timed = TimedSSD(tiny())
        completed = replay_timed(trace, timed)
        assert len(completed) == len(trace)
        # Open loop: submissions match the recorded timeline.
        writes = [r for r in completed if r.kind == "write"]
        assert writes[1].submit_ns - writes[0].submit_ns == pytest.approx(
            50_000, rel=0.01
        )

    def test_time_scale(self):
        device = SimulatedSSD(tiny())
        trace = self.make_trace(device, requests=50)
        fast = replay_timed(trace, TimedSSD(tiny()), time_scale=1.0)
        slow = replay_timed(trace, TimedSSD(tiny()), time_scale=4.0)
        assert slow[-1].submit_ns > fast[-1].submit_ns

    def test_time_scale_validated(self):
        with pytest.raises(ValueError):
            replay_timed(BlockTrace(), TimedSSD(tiny()), time_scale=0)


class TestLoadValidation:
    """Malformed traces are rejected at load time, naming the line."""

    HEADER = "op,lba,sectors,at_us\n"

    def _reject(self, text, num_sectors=None):
        with pytest.raises(TraceFormatError) as excinfo:
            BlockTrace.loads(text, num_sectors=num_sectors)
        return excinfo.value

    def test_bad_header_names_line_one(self):
        error = self._reject("kind,addr\nwrite,1\n")
        assert error.line == 1
        assert "trace line 1" in str(error)

    def test_wrong_column_count(self):
        error = self._reject(self.HEADER + "write,1,1,0.0\nwrite,2,1\n")
        assert error.line == 3
        assert "4 columns" in str(error)

    def test_unparseable_fields(self):
        error = self._reject(self.HEADER + "write,one,1,0.0\n")
        assert error.line == 2
        assert "unparseable" in str(error)

    def test_unknown_op_kind(self):
        error = self._reject(self.HEADER + "scrub,1,1,0.0\n")
        assert error.line == 2

    def test_backwards_timestamps(self):
        error = self._reject(
            self.HEADER + "write,1,1,10.0\nwrite,2,1,20.0\nwrite,3,1,5.0\n")
        assert error.line == 4
        assert "backwards" in str(error)

    def test_lba_out_of_device_range(self):
        # row 3's request [90, 110) spills past a 100-sector device
        error = self._reject(
            self.HEADER + "write,1,1,0.0\nwrite,90,20,1.0\n", num_sectors=100)
        assert error.line == 3
        assert "outside" in str(error)

    def test_zero_sector_requests_occupy_one_lba(self):
        error = self._reject(self.HEADER + "read,100,0,0.0\n", num_sectors=100)
        assert error.line == 2

    def test_flush_rows_exempt_from_lba_bounds(self):
        trace = BlockTrace.loads(self.HEADER + "flush,0,0,0.0\n",
                                 num_sectors=1)
        assert len(trace) == 1

    def test_in_range_trace_loads_with_bounds(self):
        text = self.HEADER + "write,0,4,0.0\nread,96,4,2.0\n"
        assert len(BlockTrace.loads(text, num_sectors=100)) == 2

    def test_error_is_a_value_error(self):
        # legacy callers catch ValueError; the subclass keeps them working
        assert issubclass(TraceFormatError, ValueError)

    def test_load_applies_bounds_from_file(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(self.HEADER + "write,500,4,0.0\n")
        with pytest.raises(TraceFormatError):
            BlockTrace.load(path, num_sectors=100)
