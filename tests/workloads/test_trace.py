"""Block-trace recording, persistence, and replay."""

import numpy as np
import pytest

from repro.ssd.device import SimulatedSSD
from repro.ssd.presets import tiny
from repro.ssd.timed import TimedSSD
from repro.workloads.trace import (
    BlockTrace,
    TraceRecord,
    TraceRecorder,
    replay_counter,
    replay_timed,
)


class TestTraceRecord:
    def test_validation(self):
        with pytest.raises(ValueError):
            TraceRecord("scrub", 0, 1, 0.0)
        with pytest.raises(ValueError):
            TraceRecord("write", -1, 1, 0.0)


class TestBlockTrace:
    def test_append_monotone(self):
        trace = BlockTrace()
        trace.append(TraceRecord("write", 0, 1, 0.0))
        trace.append(TraceRecord("write", 1, 1, 5.0))
        with pytest.raises(ValueError):
            trace.append(TraceRecord("write", 2, 1, 1.0))

    def test_roundtrip_text(self):
        trace = BlockTrace([
            TraceRecord("write", 10, 4, 0.0),
            TraceRecord("read", 10, 4, 20.5),
            TraceRecord("trim", 10, 4, 40.0),
            TraceRecord("flush", 0, 0, 60.0),
        ])
        loaded = BlockTrace.loads(trace.dumps())
        assert loaded.records == trace.records
        assert loaded.duration_us == 60.0
        assert loaded.sectors_written() == 4

    def test_roundtrip_file(self, tmp_path):
        trace = BlockTrace([TraceRecord("write", 1, 1, 0.0)])
        path = trace.save(tmp_path / "t" / "trace.csv")
        assert BlockTrace.load(path).records == trace.records

    def test_bad_header_rejected(self):
        with pytest.raises(ValueError):
            BlockTrace.loads("nope,nope\n1,2\n")


class TestRecorder:
    def test_records_and_passes_through(self):
        device = SimulatedSSD(tiny())
        recorder = TraceRecorder(device, rate_iops=10_000)
        recorder.write_sectors(0, 2)
        recorder.read_sectors(0, 1)
        recorder.trim_sectors(0, 1)
        recorder.flush()
        assert [r.kind for r in recorder.trace] == [
            "write", "read", "trim", "flush",
        ]
        assert device.smart.host_sectors_written == 2
        # Synthesized timestamps advance at the configured rate.
        times = [r.at_us for r in recorder.trace]
        assert times == sorted(times)
        assert times[1] - times[0] == pytest.approx(100.0)


class TestReplay:
    def make_trace(self, device, requests=300, seed=5):
        recorder = TraceRecorder(device, rate_iops=20_000)
        rng = np.random.default_rng(seed)
        for _ in range(requests):
            recorder.write_sectors(int(rng.integers(device.num_sectors)), 1)
        recorder.flush()
        return recorder.trace

    def test_counter_replay_reproduces_smart(self):
        source = SimulatedSSD(tiny())
        trace = self.make_trace(source)
        target = SimulatedSSD(tiny())
        replay_counter(trace, target)
        assert target.smart.host_program_pages == source.smart.host_program_pages
        assert target.smart.ftl_program_pages == source.smart.ftl_program_pages

    def test_timed_replay_honours_arrivals(self):
        device = SimulatedSSD(tiny())
        trace = self.make_trace(device, requests=100)
        timed = TimedSSD(tiny())
        completed = replay_timed(trace, timed)
        assert len(completed) == len(trace)
        # Open loop: submissions match the recorded timeline.
        writes = [r for r in completed if r.kind == "write"]
        assert writes[1].submit_ns - writes[0].submit_ns == pytest.approx(
            50_000, rel=0.01
        )

    def test_time_scale(self):
        device = SimulatedSSD(tiny())
        trace = self.make_trace(device, requests=50)
        fast = replay_timed(trace, TimedSSD(tiny()), time_scale=1.0)
        slow = replay_timed(trace, TimedSSD(tiny()), time_scale=4.0)
        assert slow[-1].submit_ns > fast[-1].submit_ns

    def test_time_scale_validated(self):
        with pytest.raises(ValueError):
            replay_timed(BlockTrace(), TimedSSD(tiny()), time_scale=0)
