"""JobSpec validation and the counter/timed workload engines."""

import numpy as np
import pytest

from repro.ssd.device import SimulatedSSD
from repro.ssd.presets import tiny
from repro.ssd.timed import TimedSSD
from repro.workloads.engine import run_counter, run_timed
from repro.workloads.patterns import Region
from repro.workloads.spec import JobSpec


def region_for(device, start_frac=0.0, frac=1.0):
    start = int(device.num_sectors * start_frac)
    length = max(8, int(device.num_sectors * frac))
    length = min(length, device.num_sectors - start)
    return Region(start, length)


class TestJobSpec:
    def test_valid(self):
        JobSpec("j", "randwrite", Region(0, 100))

    def test_bad_rw(self):
        with pytest.raises(ValueError):
            JobSpec("j", "randscrub", Region(0, 100))

    def test_bad_counts(self):
        with pytest.raises(ValueError):
            JobSpec("j", "randwrite", Region(0, 100), io_count=0)
        with pytest.raises(ValueError):
            JobSpec("j", "randwrite", Region(0, 100), iodepth=0)
        with pytest.raises(ValueError):
            JobSpec("j", "randrw", Region(0, 100), read_fraction=1.5)

    def test_default_patterns(self):
        assert JobSpec("j", "write", Region(0, 100)).default_pattern() == "sequential"
        assert JobSpec("j", "randwrite", Region(0, 100)).default_pattern() == "uniform"

    def test_request_kind(self):
        rng = np.random.default_rng(0)
        assert JobSpec("j", "randwrite", Region(0, 8)).request_kind(rng) == "write"
        assert JobSpec("j", "randread", Region(0, 8)).request_kind(rng) == "read"
        assert JobSpec("j", "trim", Region(0, 8)).request_kind(rng) == "trim"
        mixed = JobSpec("j", "randrw", Region(0, 8), read_fraction=0.5)
        kinds = {mixed.request_kind(rng) for _ in range(50)}
        assert kinds == {"read", "write"}

    def test_total_sectors(self):
        job = JobSpec("j", "randwrite", Region(0, 100), bs_sectors=4, io_count=10)
        assert job.total_sectors == 40

    def test_submission_validation(self):
        with pytest.raises(ValueError):
            JobSpec("j", "randwrite", Region(0, 100), submission="ajar")
        with pytest.raises(ValueError):
            JobSpec("j", "randwrite", Region(0, 100), submission="open")
        with pytest.raises(ValueError):
            JobSpec("j", "randwrite", Region(0, 100), submission="open",
                    rate_iops=1000, arrival="whenever")
        job = JobSpec("j", "randwrite", Region(0, 100), submission="open",
                      rate_iops=1000)
        assert job.is_open_loop
        assert not JobSpec("j", "randwrite", Region(0, 100)).is_open_loop


class TestRunCounter:
    def test_single_job_counts(self):
        device = SimulatedSSD(tiny())
        job = JobSpec("w", "randwrite", region_for(device), io_count=200)
        result = run_counter(device, [job])
        assert result.jobs["w"].requests == 200
        assert result.smart_delta.host_sectors_written == 200

    def test_jobs_interleaved(self):
        device = SimulatedSSD(tiny())
        half = device.num_sectors // 2
        jobs = [
            JobSpec("a", "randwrite", Region(0, half), io_count=100),
            JobSpec("b", "randwrite", Region(half, half), io_count=100),
        ]
        result = run_counter(device, jobs)
        assert result.jobs["a"].requests == 100
        assert result.jobs["b"].requests == 100
        assert result.smart_delta.host_sectors_written == 200

    def test_uneven_io_counts(self):
        device = SimulatedSSD(tiny())
        half = device.num_sectors // 2
        jobs = [
            JobSpec("a", "randwrite", Region(0, half), io_count=50),
            JobSpec("b", "randwrite", Region(half, half), io_count=150),
        ]
        result = run_counter(device, jobs)
        assert result.jobs["b"].requests == 150

    def test_waf_computed_from_delta(self):
        device = SimulatedSSD(tiny())
        job = JobSpec("w", "randwrite", region_for(device), io_count=3000)
        result = run_counter(device, [job])
        assert result.waf > 0

    def test_no_jobs_rejected(self):
        with pytest.raises(ValueError):
            run_counter(SimulatedSSD(tiny()), [])

    def test_read_job_no_programs(self):
        device = SimulatedSSD(tiny())
        write = JobSpec("w", "write", region_for(device), io_count=50)
        run_counter(device, [write])
        before = device.smart_snapshot()
        read = JobSpec("r", "randread", region_for(device), io_count=50)
        run_counter(device, [read], flush_at_end=False)
        delta = device.smart.delta(before)
        assert delta.host_program_pages == 0
        assert delta.host_sectors_read == 50


class TestRunTimed:
    def test_latencies_collected(self):
        device = TimedSSD(tiny())
        job = JobSpec("w", "randwrite", Region(0, device.num_sectors), io_count=100)
        result = run_timed(device, [job])
        assert len(result.jobs["w"].latencies_us) == 100
        assert result.jobs["w"].iops > 0
        assert result.elapsed_ns > 0

    def test_io_count_respected_with_iodepth(self):
        device = TimedSSD(tiny())
        job = JobSpec("w", "randwrite", Region(0, device.num_sectors),
                      io_count=50, iodepth=4)
        result = run_timed(device, [job])
        assert result.jobs["w"].requests == 50

    def test_concurrent_jobs_interfere(self):
        """A job runs slower sharing the device than alone."""
        config = tiny()
        alone = TimedSSD(config)
        half = alone.num_sectors // 2
        job_a = JobSpec("a", "randwrite", Region(0, half), io_count=400)
        solo = run_timed(alone, [job_a])

        shared = TimedSSD(config)
        job_b = JobSpec("b", "randwrite", Region(half, half), io_count=400)
        both = run_timed(shared, [job_a, job_b])
        assert both.jobs["a"].elapsed_ns > solo.jobs["a"].elapsed_ns

    def test_percentile_helper(self):
        device = TimedSSD(tiny())
        job = JobSpec("w", "randwrite", Region(0, device.num_sectors), io_count=200)
        result = run_timed(device, [job])
        p50 = result.jobs["w"].percentile_us(50)
        p99 = result.jobs["w"].percentile_us(99)
        assert p99 >= p50 > 0

    def test_no_jobs_rejected(self):
        with pytest.raises(ValueError):
            run_timed(TimedSSD(tiny()), [])


class TestOpenLoopSubmission:
    def open_job(self, device, rate, io_count=300, seed=3, **kwargs):
        return JobSpec("o", "randwrite", Region(0, device.num_sectors),
                       io_count=io_count, seed=seed, submission="open",
                       rate_iops=rate, **kwargs)

    def test_io_count_respected(self):
        device = TimedSSD(tiny())
        result = run_timed(device, [self.open_job(device, 5_000)])
        assert result.jobs["o"].requests == 300

    def test_address_stream_independent_of_submission_mode(self):
        """Switching closed -> open must not perturb which LBAs a job
        touches: arrival gaps come from a separate RNG stream."""
        config = tiny()
        closed_dev = TimedSSD(config)
        closed = JobSpec("o", "randwrite", Region(0, closed_dev.num_sectors),
                         io_count=300, seed=3)
        run_timed(closed_dev, [closed])
        open_dev = TimedSSD(config)
        run_timed(open_dev, [self.open_job(open_dev, 5_000)])
        closed_lbas = [r.lba for r in closed_dev.completed]
        open_lbas = [r.lba for r in open_dev.completed]
        assert closed_lbas == open_lbas

    def test_submissions_follow_arrival_times(self):
        device = TimedSSD(tiny())
        run_timed(device, [self.open_job(device, 1_000, io_count=100)])
        submits = [r.submit_ns for r in device.completed]
        assert submits == sorted(submits)
        # Mean gap ~1 ms at 1000 IOPS: the run spans arrival time, well
        # beyond what back-to-back submission would take.
        assert submits[-1] - submits[0] > 50 * 1_000_000

    def test_queue_depth_events_emitted_with_sink(self):
        from repro.obs import CounterSink

        device = TimedSSD(tiny())
        sink = CounterSink()
        run_timed(device, [self.open_job(device, 50_000)], sink=sink)
        assert sink.count("queue_depth") == 300

    def test_no_queue_depth_events_closed_loop(self):
        from repro.obs import CounterSink

        device = TimedSSD(tiny())
        sink = CounterSink()
        job = JobSpec("c", "randwrite", Region(0, device.num_sectors),
                      io_count=100, iodepth=4, seed=3)
        run_timed(device, [job], sink=sink)
        assert sink.count("queue_depth") == 0

    def test_mixed_closed_and_open_jobs(self):
        device = TimedSSD(tiny())
        half = device.num_sectors // 2
        closed = JobSpec("c", "randwrite", Region(0, half), io_count=200,
                         iodepth=2, seed=1)
        open_job = JobSpec("o", "randwrite", Region(half, half), io_count=200,
                           seed=2, submission="open", rate_iops=20_000)
        result = run_timed(device, [closed, open_job])
        assert result.jobs["c"].requests == 200
        assert result.jobs["o"].requests == 200
