"""JobSpec validation and the counter/timed workload engines."""

import numpy as np
import pytest

from repro.ssd.device import SimulatedSSD
from repro.ssd.presets import tiny
from repro.ssd.timed import TimedSSD
from repro.workloads.engine import run_counter, run_timed
from repro.workloads.patterns import Region
from repro.workloads.spec import JobSpec


def region_for(device, start_frac=0.0, frac=1.0):
    start = int(device.num_sectors * start_frac)
    length = max(8, int(device.num_sectors * frac))
    length = min(length, device.num_sectors - start)
    return Region(start, length)


class TestJobSpec:
    def test_valid(self):
        JobSpec("j", "randwrite", Region(0, 100))

    def test_bad_rw(self):
        with pytest.raises(ValueError):
            JobSpec("j", "randscrub", Region(0, 100))

    def test_bad_counts(self):
        with pytest.raises(ValueError):
            JobSpec("j", "randwrite", Region(0, 100), io_count=0)
        with pytest.raises(ValueError):
            JobSpec("j", "randwrite", Region(0, 100), iodepth=0)
        with pytest.raises(ValueError):
            JobSpec("j", "randrw", Region(0, 100), read_fraction=1.5)

    def test_default_patterns(self):
        assert JobSpec("j", "write", Region(0, 100)).default_pattern() == "sequential"
        assert JobSpec("j", "randwrite", Region(0, 100)).default_pattern() == "uniform"

    def test_request_kind(self):
        rng = np.random.default_rng(0)
        assert JobSpec("j", "randwrite", Region(0, 8)).request_kind(rng) == "write"
        assert JobSpec("j", "randread", Region(0, 8)).request_kind(rng) == "read"
        assert JobSpec("j", "trim", Region(0, 8)).request_kind(rng) == "trim"
        mixed = JobSpec("j", "randrw", Region(0, 8), read_fraction=0.5)
        kinds = {mixed.request_kind(rng) for _ in range(50)}
        assert kinds == {"read", "write"}

    def test_total_sectors(self):
        job = JobSpec("j", "randwrite", Region(0, 100), bs_sectors=4, io_count=10)
        assert job.total_sectors == 40


class TestRunCounter:
    def test_single_job_counts(self):
        device = SimulatedSSD(tiny())
        job = JobSpec("w", "randwrite", region_for(device), io_count=200)
        result = run_counter(device, [job])
        assert result.jobs["w"].requests == 200
        assert result.smart_delta.host_sectors_written == 200

    def test_jobs_interleaved(self):
        device = SimulatedSSD(tiny())
        half = device.num_sectors // 2
        jobs = [
            JobSpec("a", "randwrite", Region(0, half), io_count=100),
            JobSpec("b", "randwrite", Region(half, half), io_count=100),
        ]
        result = run_counter(device, jobs)
        assert result.jobs["a"].requests == 100
        assert result.jobs["b"].requests == 100
        assert result.smart_delta.host_sectors_written == 200

    def test_uneven_io_counts(self):
        device = SimulatedSSD(tiny())
        half = device.num_sectors // 2
        jobs = [
            JobSpec("a", "randwrite", Region(0, half), io_count=50),
            JobSpec("b", "randwrite", Region(half, half), io_count=150),
        ]
        result = run_counter(device, jobs)
        assert result.jobs["b"].requests == 150

    def test_waf_computed_from_delta(self):
        device = SimulatedSSD(tiny())
        job = JobSpec("w", "randwrite", region_for(device), io_count=3000)
        result = run_counter(device, [job])
        assert result.waf > 0

    def test_no_jobs_rejected(self):
        with pytest.raises(ValueError):
            run_counter(SimulatedSSD(tiny()), [])

    def test_read_job_no_programs(self):
        device = SimulatedSSD(tiny())
        write = JobSpec("w", "write", region_for(device), io_count=50)
        run_counter(device, [write])
        before = device.smart_snapshot()
        read = JobSpec("r", "randread", region_for(device), io_count=50)
        run_counter(device, [read], flush_at_end=False)
        delta = device.smart.delta(before)
        assert delta.host_program_pages == 0
        assert delta.host_sectors_read == 50


class TestRunTimed:
    def test_latencies_collected(self):
        device = TimedSSD(tiny())
        job = JobSpec("w", "randwrite", Region(0, device.num_sectors), io_count=100)
        result = run_timed(device, [job])
        assert len(result.jobs["w"].latencies_us) == 100
        assert result.jobs["w"].iops > 0
        assert result.elapsed_ns > 0

    def test_io_count_respected_with_iodepth(self):
        device = TimedSSD(tiny())
        job = JobSpec("w", "randwrite", Region(0, device.num_sectors),
                      io_count=50, iodepth=4)
        result = run_timed(device, [job])
        assert result.jobs["w"].requests == 50

    def test_concurrent_jobs_interfere(self):
        """A job runs slower sharing the device than alone."""
        config = tiny()
        alone = TimedSSD(config)
        half = alone.num_sectors // 2
        job_a = JobSpec("a", "randwrite", Region(0, half), io_count=400)
        solo = run_timed(alone, [job_a])

        shared = TimedSSD(config)
        job_b = JobSpec("b", "randwrite", Region(half, half), io_count=400)
        both = run_timed(shared, [job_a, job_b])
        assert both.jobs["a"].elapsed_ns > solo.jobs["a"].elapsed_ns

    def test_percentile_helper(self):
        device = TimedSSD(tiny())
        job = JobSpec("w", "randwrite", Region(0, device.num_sectors), io_count=200)
        result = run_timed(device, [job])
        p50 = result.jobs["w"].percentile_us(50)
        p99 = result.jobs["w"].percentile_us(99)
        assert p99 >= p50 > 0

    def test_no_jobs_rejected(self):
        with pytest.raises(ValueError):
            run_timed(TimedSSD(tiny()), [])
