"""Degraded-mode engine semantics: a device that goes read-only or
loses power mid-run yields a clean partial result, never a traceback.

The timed engine catches ``ReadOnlyError`` / ``OutOfSpace`` /
``PowerLoss`` per request: refused requests are counted as
``failed_requests``, the run records what degraded it and when, and
every request kind the device can still serve keeps being served
(reads and flushes on a read-only drive; nothing after a power cut).
"""

from repro.faults import FaultPlan, FaultSpec, PlannedFaultInjector
from repro.ssd.presets import tiny
from repro.ssd.timed import TimedSSD
from repro.workloads.engine import run_timed
from repro.workloads.patterns import Region
from repro.workloads.spec import JobSpec


def faulted_device(*specs, spare_blocks_min=0, seed=5) -> TimedSSD:
    config = tiny().with_changes(spare_blocks_min=spare_blocks_min)
    injector = PlannedFaultInjector(FaultPlan(seed=seed, specs=specs),
                                    config.geometry)
    return TimedSSD(config, injector=injector)


def read_only_device() -> TimedSSD:
    # A program-fail storm from op 20 retires blocks until the spare
    # pool crosses the floor and the FTL declares itself read-only.
    # The firing count is bounded (like campaign plans bound it): an
    # unlimited storm would burn the whole spare pool inside a single
    # write's retry loop and surface as OutOfSpace instead.
    from repro.fleet.chaos import initial_spare_blocks

    config = tiny().with_changes(spare_blocks_min=4)
    count = initial_spare_blocks(config) - config.spare_blocks_min + 2
    return faulted_device(
        FaultSpec("program_fail", at_op=20, count=count),
        spare_blocks_min=4,
    )


class TestReadOnlyMidRun:
    def test_open_loop_partial_result(self):
        device = read_only_device()
        job = JobSpec("w", "randwrite", Region(0, device.num_sectors),
                      io_count=300, seed=1, submission="open",
                      rate_iops=5_000.0)
        result = run_timed(device, [job])
        outcome = result.jobs["w"]
        assert result.degraded_kind == "read_only"
        assert result.degraded_at_ns >= 0
        assert 0 <= result.ops_before_degraded < 300
        assert outcome.failed_requests > 0
        assert outcome.requests + outcome.failed_requests == 300
        assert len(outcome.latencies_us) == outcome.requests

    def test_reads_still_served_after_degradation(self):
        device = read_only_device()
        writer = JobSpec("w", "randwrite", Region(0, device.num_sectors),
                         io_count=200, seed=1, submission="open",
                         rate_iops=5_000.0)
        reader = JobSpec("r", "randread", Region(0, device.num_sectors),
                         io_count=200, seed=2, submission="open",
                         rate_iops=5_000.0)
        result = run_timed(device, [writer, reader])
        assert result.degraded_kind == "read_only"
        assert result.jobs["w"].failed_requests > 0
        # A read-only drive refuses writes but keeps serving reads.
        assert result.jobs["r"].failed_requests == 0
        assert result.jobs["r"].requests == 200

    def test_closed_loop_partial_result(self):
        device = read_only_device()
        job = JobSpec("w", "randwrite", Region(0, device.num_sectors),
                      io_count=300, iodepth=4, seed=1)
        result = run_timed(device, [job])
        outcome = result.jobs["w"]
        assert result.degraded_kind == "read_only"
        assert outcome.failed_requests > 0
        assert outcome.requests + outcome.failed_requests == 300

    def test_fault_free_run_records_nothing(self):
        device = TimedSSD(tiny())
        job = JobSpec("w", "randwrite", Region(0, device.num_sectors),
                      io_count=100, seed=1)
        result = run_timed(device, [job])
        assert result.degraded_kind == ""
        assert result.degraded_at_ns == -1
        assert result.ops_before_degraded == -1
        assert not result.degraded
        assert result.jobs["w"].failed_requests == 0


class TestPowerCutMidRun:
    def test_power_cut_kills_every_job(self):
        device = faulted_device(FaultSpec("power_cut", at_op=60))
        jobs = [
            JobSpec("a", "randwrite", Region(0, device.num_sectors),
                    io_count=100, seed=1, submission="open",
                    rate_iops=5_000.0),
            JobSpec("b", "randread", Region(0, device.num_sectors),
                    io_count=100, seed=2, submission="open",
                    rate_iops=5_000.0),
        ]
        result = run_timed(device, jobs)
        assert result.degraded_kind == "power_cut"
        assert result.degraded_at_ns >= 0
        # After the cut the device is dead to every job, reads included.
        total_failed = sum(j.failed_requests for j in result.jobs.values())
        total_done = sum(j.requests for j in result.jobs.values())
        assert total_failed > 0
        assert total_done + total_failed == 200
        assert total_done <= result.ops_before_degraded + len(jobs)

    def test_closed_loop_power_cut_terminates(self):
        device = faulted_device(FaultSpec("power_cut", at_op=40))
        job = JobSpec("w", "randwrite", Region(0, device.num_sectors),
                      io_count=200, iodepth=8, seed=3)
        result = run_timed(device, [job])
        outcome = result.jobs["w"]
        assert result.degraded_kind == "power_cut"
        assert outcome.requests + outcome.failed_requests == 200
        assert outcome.failed_requests >= 200 - 41
