"""The RequestSource abstraction: every workload as one stream type."""

import numpy as np
import pytest

from repro.ssd.device import SimulatedSSD
from repro.ssd.presets import mqsim_baseline, tiny
from repro.ssd.timed import TimedSSD
from repro.workloads.engine import run_counter, run_timed
from repro.workloads.patterns import Region
from repro.workloads.source import (
    FS_MODELS,
    FsSource,
    JobSource,
    RecordingBackend,
    RequestSource,
    TraceSource,
    as_source,
    record_fs_workload,
    synthetic_source,
)
from repro.workloads.spec import JobSpec
from repro.workloads.trace import BlockTrace, TraceRecord


class TestAsSource:
    def test_spec_wraps_into_job_source(self):
        job = JobSpec("j", "randwrite", Region(0, 100), io_count=5)
        source = as_source(job)
        assert isinstance(source, JobSource)
        assert source.name == "j"
        assert source.job is job

    def test_source_passes_through(self):
        source = synthetic_source("s", "randwrite", 100, io_count=3)
        assert as_source(source) is source

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            as_source("randwrite")

    def test_base_class_is_abstract(self):
        source = RequestSource()
        with pytest.raises(NotImplementedError):
            source.next_request()
        with pytest.raises(NotImplementedError):
            source.arrival_times(0)
        assert source.remaining is None


class TestJobSource:
    def test_scheduling_attributes_mirror_the_spec(self):
        job = JobSpec("j", "randrw", Region(0, 100), io_count=7, iodepth=4,
                      seed=3)
        source = JobSource(job)
        assert source.name == "j"
        assert source.iodepth == 4
        assert not source.is_open_loop
        assert source.remaining == 7

    def test_yields_io_count_requests_then_none(self):
        source = synthetic_source("s", "randwrite", 100, io_count=4,
                                  bs_sectors=2)
        requests = list(source)
        assert len(requests) == 4
        assert source.remaining == 0
        assert source.next_request() is None
        for kind, lba, sectors in requests:
            assert kind == "write"
            assert sectors == 2
            assert 0 <= lba <= 98

    def test_open_loop_arrivals_match_the_spec(self):
        job = JobSpec("j", "randwrite", Region(0, 100), io_count=16,
                      submission="open", rate_iops=10_000.0, seed=5)
        source = JobSource(job)
        assert source.is_open_loop
        arrivals = source.arrival_times(1000)
        assert arrivals.shape == (16,)
        assert arrivals.dtype == np.int64
        assert np.all(np.diff(arrivals) >= 1)
        np.testing.assert_array_equal(arrivals,
                                      JobSource(job).arrival_times(1000))

    def test_builder_matches_hand_built_spec(self):
        built = synthetic_source("t", "randwrite", 200, bs_sectors=4,
                                 io_count=9, iodepth=2, seed=7)
        spec = JobSpec("t", "randwrite", Region(0, 200), bs_sectors=4,
                       io_count=9, iodepth=2, seed=7)
        assert built.job == spec
        assert list(built) == list(JobSource(spec))


class TestTraceSource:
    def _trace(self):
        return BlockTrace([
            TraceRecord("write", 10, 4, 0.0),
            TraceRecord("read", 10, 4, 25.0),
            TraceRecord("flush", 0, 0, 50.0),
            TraceRecord("trim", 10, 0, 75.0),
        ])

    def test_yields_records_in_order(self):
        source = TraceSource(self._trace())
        assert source.remaining == 4
        assert list(source) == [
            ("write", 10, 4), ("read", 10, 4), ("flush", 0, 0),
            ("trim", 10, 1),  # zero-sector records replay as one sector
        ]
        assert source.remaining == 0

    def test_open_loop_by_default_with_recorded_arrivals(self):
        source = TraceSource(self._trace())
        assert source.is_open_loop
        np.testing.assert_array_equal(
            source.arrival_times(0), [0, 25_000, 50_000, 75_000])

    def test_time_scale_stretches_arrivals(self):
        source = TraceSource(self._trace(), time_scale=2.0)
        np.testing.assert_array_equal(
            source.arrival_times(1000), [1000, 51_000, 101_000, 151_000])

    def test_closed_submission(self):
        source = TraceSource(self._trace(), submission="closed", iodepth=3)
        assert not source.is_open_loop
        assert source.iodepth == 3

    def test_lba_relocation(self):
        # offset alone shifts; modulo wraps into [offset, offset+modulo)
        shifted = TraceSource(self._trace(), lba_offset=100)
        assert shifted.next_request() == ("write", 110, 4)
        wrapped = TraceSource(self._trace(), lba_offset=100, lba_modulo=8)
        kind, lba, sectors = wrapped.next_request()
        assert (kind, sectors) == ("write", 4)
        assert 100 <= lba and lba + sectors <= 108

    def test_validation(self):
        trace = self._trace()
        with pytest.raises(ValueError):
            TraceSource(trace, time_scale=0.0)
        with pytest.raises(ValueError):
            TraceSource(trace, submission="batched")
        with pytest.raises(ValueError):
            TraceSource(trace, iodepth=0)
        with pytest.raises(ValueError):
            TraceSource(trace, lba_offset=-1)
        with pytest.raises(ValueError):
            TraceSource(trace, lba_modulo=0)

    def test_runs_through_both_engine_modes(self):
        counter = SimulatedSSD(tiny())
        result = run_counter(counter, [TraceSource(self._trace())])
        assert result.jobs["trace"].requests == 4
        timed = TimedSSD(tiny())
        result = run_timed(timed, [TraceSource(self._trace())])
        assert result.jobs["trace"].requests == 4
        assert result.jobs["trace"].failed_requests == 0


class TestRecordingBackend:
    def test_captures_the_block_stream(self):
        backend = RecordingBackend(1000, rate_iops=1_000_000.0)
        backend.write(5, 2)
        backend.read(5, 2)
        backend.trim(5, 2)
        backend.flush()
        kinds = [r.kind for r in backend.trace]
        assert kinds == ["write", "read", "trim", "flush"]
        at_us = [r.at_us for r in backend.trace]
        assert at_us == sorted(at_us)
        assert backend.now_ns == 4000  # four ops at 1 us per op

    def test_validation(self):
        with pytest.raises(ValueError):
            RecordingBackend(0)
        with pytest.raises(ValueError):
            RecordingBackend(100, rate_iops=0.0)


class TestFsSource:
    def test_recorded_workload_is_deterministic(self):
        a = record_fs_workload("ext4", 4096, operations=40, seed=9)
        b = record_fs_workload("ext4", 4096, operations=40, seed=9)
        assert len(a) > 0
        assert a.records == b.records

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            record_fs_workload("zfs", 4096)

    @pytest.mark.parametrize("model", FS_MODELS)
    def test_source_replays_through_the_engine(self, model):
        device = SimulatedSSD(mqsim_baseline(scale=4))
        source = FsSource(model, device.num_sectors, operations=30, seed=2,
                          working_files=10)
        assert source.name == f"fs-{model}"
        assert not source.is_open_loop  # synchronous backend semantics
        result = run_counter(device, [source])
        assert result.jobs[source.name].requests == len(source.trace) > 0
        assert source.remaining == 0
