"""Address patterns: alignment, containment, skew shapes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.patterns import (
    HotCold,
    Region,
    Sequential,
    Uniform,
    Zipf,
    make_pattern,
)

REGION = Region(1024, 4096)


class TestRegion:
    def test_end(self):
        assert REGION.end == 5120

    def test_slots(self):
        assert REGION.slots(4) == 1024

    def test_validation(self):
        with pytest.raises(ValueError):
            Region(-1, 10)
        with pytest.raises(ValueError):
            Region(0, 0)


class TestSequential:
    def test_advances_and_wraps(self):
        pattern = Sequential(Region(0, 8), bs_sectors=2)
        rng = np.random.default_rng(0)
        lbas = [pattern.next_lba(rng) for _ in range(5)]
        assert lbas == [0, 2, 4, 6, 0]

    def test_region_offset_respected(self):
        pattern = Sequential(Region(100, 8), bs_sectors=4)
        rng = np.random.default_rng(0)
        assert pattern.next_lba(rng) == 100


class TestUniform:
    def test_stays_in_region_and_aligned(self):
        pattern = Uniform(REGION, bs_sectors=4)
        rng = np.random.default_rng(0)
        for _ in range(500):
            lba = pattern.next_lba(rng)
            assert REGION.start <= lba <= REGION.end - 4
            assert (lba - REGION.start) % 4 == 0

    def test_covers_the_region(self):
        pattern = Uniform(Region(0, 64), bs_sectors=1)
        rng = np.random.default_rng(0)
        seen = {pattern.next_lba(rng) for _ in range(2000)}
        assert len(seen) == 64


class TestHotCold:
    def test_traffic_skew(self):
        pattern = HotCold(Region(0, 1000), bs_sectors=1,
                          space_fraction=0.2, traffic_fraction=0.8)
        rng = np.random.default_rng(0)
        hits = [pattern.next_lba(rng) for _ in range(5000)]
        hot = sum(1 for lba in hits if lba < 200)
        assert 0.75 < hot / len(hits) < 0.85

    def test_cold_region_still_reached(self):
        pattern = HotCold(Region(0, 1000), bs_sectors=1)
        rng = np.random.default_rng(0)
        assert any(pattern.next_lba(rng) >= 200 for _ in range(1000))

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            HotCold(REGION, 1, space_fraction=0.0)
        with pytest.raises(ValueError):
            HotCold(REGION, 1, traffic_fraction=1.0)


class TestZipf:
    def test_heavily_skewed(self):
        pattern = Zipf(Region(0, 1000), bs_sectors=1, theta=1.2)
        rng = np.random.default_rng(0)
        hits = [pattern.next_lba(rng) for _ in range(5000)]
        values, counts = np.unique(hits, return_counts=True)
        top = counts.max() / len(hits)
        assert top > 0.1  # the hottest slot dominates

    def test_popularity_not_address_correlated(self):
        pattern = Zipf(Region(0, 1000), bs_sectors=1, theta=1.2, seed=3)
        rng = np.random.default_rng(0)
        hits = [pattern.next_lba(rng) for _ in range(3000)]
        values, counts = np.unique(hits, return_counts=True)
        hottest = values[counts.argmax()]
        assert hottest != 0  # shuffled, not rank-0-at-address-0

    def test_theta_validation(self):
        with pytest.raises(ValueError):
            Zipf(REGION, 1, theta=0)


class TestFactory:
    @pytest.mark.parametrize("name", ["sequential", "uniform", "hotcold", "zipf"])
    def test_make(self, name):
        pattern = make_pattern(name, REGION, 4)
        rng = np.random.default_rng(0)
        assert REGION.start <= pattern.next_lba(rng) < REGION.end

    def test_kwargs_forwarded(self):
        pattern = make_pattern("hotcold", REGION, 1, space_fraction=0.5)
        assert pattern.space_fraction == 0.5

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_pattern("bimodal", REGION, 1)

    def test_region_too_small(self):
        with pytest.raises(ValueError):
            make_pattern("uniform", Region(0, 2), 4)


@settings(max_examples=30)
@given(
    name=st.sampled_from(["sequential", "uniform", "hotcold"]),
    bs=st.sampled_from([1, 2, 4, 8]),
    seed=st.integers(0, 100),
)
def test_all_patterns_contained_property(name, bs, seed):
    region = Region(64, 512)
    pattern = make_pattern(name, region, bs)
    rng = np.random.default_rng(seed)
    for _ in range(100):
        lba = pattern.next_lba(rng)
        assert region.start <= lba
        assert lba + bs <= region.end
        assert (lba - region.start) % bs == 0
