"""Open-loop arrival processes: diurnal and bursty (fleet tenants).

The fleet layer keys on these being deterministic per seed and on the
address/kind stream being independent of the arrival mode (the
dedicated arrival RNG stream), so both are pinned here alongside the
statistical shape of each process.
"""

import numpy as np
import pytest

from repro.ssd.presets import tiny
from repro.ssd.timed import TimedSSD
from repro.workloads.engine import _arrival_times, run_timed
from repro.workloads.patterns import Region
from repro.workloads.spec import JobSpec


def open_job(arrival: str, io_count: int = 2000, rate: float = 50_000.0,
             **kwargs) -> JobSpec:
    return JobSpec("t", "randwrite", Region(0, 512), io_count=io_count,
                   submission="open", rate_iops=rate, arrival=arrival,
                   seed=7, **kwargs)


class TestValidation:
    def test_unknown_arrival_rejected(self):
        with pytest.raises(ValueError, match="arrival"):
            open_job("lumpy")

    @pytest.mark.parametrize("kwargs", [
        {"diurnal_amplitude": 1.0},
        {"diurnal_amplitude": -0.1},
        {"diurnal_period_s": 0.0},
    ])
    def test_diurnal_bounds(self, kwargs):
        with pytest.raises(ValueError):
            open_job("diurnal", **kwargs)

    @pytest.mark.parametrize("kwargs", [
        {"burst_multiplier": 0.5},
        {"burst_len": 0},
        {"burst_fraction": 0.0},
        {"burst_fraction": 1.0},
    ])
    def test_bursty_bounds(self, kwargs):
        with pytest.raises(ValueError):
            open_job("bursty", **kwargs)


class TestArrivalShapes:
    @pytest.mark.parametrize("arrival", ["poisson", "fixed", "diurnal", "bursty"])
    def test_deterministic_and_strictly_increasing(self, arrival):
        job = open_job(arrival)
        a = _arrival_times(job, 1000)
        b = _arrival_times(job, 1000)
        assert np.array_equal(a, b)
        assert a.size == job.io_count
        assert (np.diff(a) >= 1).all()
        assert a[0] >= 1000

    def test_arrival_mode_does_not_perturb_address_stream(self):
        # Same seed, different arrival process: the written LBAs must be
        # identical because arrivals come from a dedicated RNG stream.
        lbas = {}
        for arrival in ("poisson", "diurnal", "bursty"):
            job = open_job(arrival, io_count=300, rate=20_000.0)
            pattern, rng = job.make_pattern(), np.random.default_rng(job.seed)
            lbas[arrival] = [pattern.next_lba(rng) for _ in range(300)]
        assert lbas["poisson"] == lbas["diurnal"] == lbas["bursty"]

    def test_diurnal_rate_tracks_the_curve(self):
        # With a strong amplitude, the half-period where sin > 0 must
        # receive measurably more arrivals than the half where sin < 0.
        period_ns = int(0.05 * 1e9)
        job = open_job("diurnal", io_count=20_000, rate=400_000.0,
                       diurnal_amplitude=0.9, diurnal_period_s=0.05)
        times = _arrival_times(job, 0)
        phase = (times % period_ns) / period_ns
        first_half = int((phase < 0.5).sum())
        second_half = int((phase >= 0.5).sum())
        assert first_half > 1.5 * second_half

    def test_diurnal_zero_amplitude_is_plain_poisson(self):
        flat = open_job("diurnal", diurnal_amplitude=0.0)
        poisson = open_job("poisson")
        assert np.array_equal(_arrival_times(flat, 0), _arrival_times(poisson, 0))

    def test_bursty_has_heavier_gap_tail_than_its_bursts(self):
        job = open_job("bursty", io_count=20_000, rate=50_000.0,
                       burst_multiplier=16.0, burst_len=64,
                       burst_fraction=0.2)
        gaps = np.diff(_arrival_times(job, 0)).astype(float)
        # Burst gaps are 16x shorter, so the gap distribution must be
        # bimodal-ish: the 25th percentile well under the Poisson mean,
        # while the mean stays near the mixture expectation.
        mean_gap = 1e9 / job.rate_iops
        assert np.percentile(gaps, 25) < 0.3 * mean_gap
        assert gaps.mean() > 0.5 * mean_gap

    def test_bursty_mean_burst_share_is_calibrated(self):
        # ~burst_fraction of requests should arrive at burst pacing.
        job = open_job("bursty", io_count=50_000, rate=50_000.0,
                       burst_multiplier=32.0, burst_len=50,
                       burst_fraction=0.1)
        gaps = np.diff(_arrival_times(job, 0)).astype(float)
        burst_cut = (1e9 / job.rate_iops) / 8.0  # well between the modes
        share = (gaps < burst_cut).mean()
        assert 0.05 < share < 0.25


class TestEngineIntegration:
    @pytest.mark.parametrize("arrival", ["diurnal", "bursty"])
    def test_runs_end_to_end_and_is_deterministic(self, arrival):
        def run():
            device = TimedSSD(tiny())
            job = JobSpec("t", "randwrite", Region(0, device.num_sectors),
                          io_count=400, submission="open", rate_iops=30_000.0,
                          arrival=arrival, seed=11)
            return run_timed(device, [job])
        a, b = run(), run()
        assert a.jobs["t"].requests == 400
        assert np.array_equal(a.jobs["t"].latencies_us, b.jobs["t"].latencies_us)
