"""OLTP workload and the compressibility model."""

import pytest

from repro.ssd.compression import make_scheme
from repro.workloads.compressibility import (
    REGIMES,
    CompressibilityModel,
    DataClass,
)
from repro.workloads.oltp import (
    OltpConfig,
    OltpWorkload,
    flash_writes_per_transaction,
)


class TestCompressibility:
    def test_high_regime_small_sizes(self):
        model = CompressibilityModel(REGIMES["high"], seed=1)
        sizes = [model.compressed_size("table") for _ in range(200)]
        assert all(64 <= s <= 4096 for s in sizes)
        assert sum(sizes) / len(sizes) < 0.35 * 4096

    def test_incompressible_full_size(self):
        model = CompressibilityModel(REGIMES["incompressible"])
        assert model.compressed_size("table") == 4096

    def test_unknown_class(self):
        model = CompressibilityModel()
        with pytest.raises(KeyError):
            model.compressed_size("video")

    def test_dataclass_validation(self):
        with pytest.raises(ValueError):
            DataClass("x", mean_ratio=0.0)
        with pytest.raises(ValueError):
            DataClass("x", mean_ratio=0.5, spread=-1)

    def test_mean_ratio(self):
        model = CompressibilityModel(REGIMES["incompressible"])
        assert model.mean_ratio() == pytest.approx(1.0)

    def test_seeded_determinism(self):
        a = CompressibilityModel(seed=7)
        b = CompressibilityModel(seed=7)
        assert [a.compressed_size("index") for _ in range(20)] == [
            b.compressed_size("index") for _ in range(20)
        ]


class TestOltpWorkload:
    def test_transaction_shape(self):
        config = OltpConfig()
        workload = OltpWorkload(config)
        txn = workload.transaction()
        assert len(txn) == config.writes_per_txn
        classes = [w.data_class for w in txn]
        assert classes.count("table") == config.table_updates_per_txn
        assert classes.count("index") == config.index_updates_per_txn
        assert classes.count("log") == config.log_appends_per_txn

    def test_address_regions_disjoint(self):
        config = OltpConfig()
        workload = OltpWorkload(config)
        for txn in workload.stream(50):
            for write in txn:
                if write.data_class == "table":
                    assert write.lpn < config.table_pages
                elif write.data_class == "index":
                    assert config.table_pages <= write.lpn < (
                        config.table_pages + config.index_pages
                    )
                else:
                    assert write.lpn >= config.table_pages + config.index_pages

    def test_log_is_append_ring(self):
        config = OltpConfig(log_pages=4, log_appends_per_txn=1)
        workload = OltpWorkload(config)
        base = config.table_pages + config.index_pages
        lpns = [workload.transaction()[-1].lpn for _ in range(6)]
        assert lpns == [base, base + 1, base + 2, base + 3, base, base + 1]

    def test_stream_count(self):
        workload = OltpWorkload()
        assert len(list(workload.stream(7))) == 7
        assert workload.transactions_generated == 7

    def test_config_validation(self):
        with pytest.raises(ValueError):
            OltpConfig(table_pages=0)


class TestFlashWritesPerTransaction:
    def test_positive_for_all_schemes(self):
        for name in ("none", "fixed", "compact", "chunk4", "re-bp32"):
            scheme = make_scheme(name)
            rate = flash_writes_per_transaction(
                scheme, OltpWorkload(seed=1), CompressibilityModel(seed=1), 200
            )
            assert rate > 0

    def test_compression_beats_none(self):
        none_rate = flash_writes_per_transaction(
            make_scheme("none"), OltpWorkload(seed=1),
            CompressibilityModel(seed=1), 300,
        )
        compact_rate = flash_writes_per_transaction(
            make_scheme("compact"), OltpWorkload(seed=1),
            CompressibilityModel(seed=1), 300,
        )
        assert compact_rate < none_rate

    def test_transactions_validated(self):
        with pytest.raises(ValueError):
            flash_writes_per_transaction(
                make_scheme("none"), OltpWorkload(), CompressibilityModel(), 0
            )
