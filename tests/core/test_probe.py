"""Hardware-probe toolkit: analyzer limits, decoder, inference."""

import numpy as np
import pytest

from repro.core.probe.analyzer import (
    BENCH,
    HOBBYIST,
    TLA7000,
    AnalyzerSpec,
    LogicAnalyzer,
)
from repro.core.probe.decoder import decode_capture, decode_trace_windows
from repro.core.probe.inference import (
    HostOpRecord,
    infer_ftl_features,
    signal_activity,
)
from repro.flash.geometry import Geometry, PhysicalAddress
from repro.flash.onfi import (
    encode_erase,
    encode_program,
    encode_read,
    encode_read_id,
    encode_reset,
)
from repro.flash.signals import SignalEmitter
from repro.flash.timing import profile

GEOM = Geometry(
    channels=1, chips_per_channel=1, dies_per_chip=1, planes_per_die=1,
    blocks_per_plane=8, pages_per_block=16, page_size=4096, sector_size=4096,
)
ASYNC = profile("async")


def emit_ops(ops):
    emitter = SignalEmitter(ASYNC)
    now = 0
    for op in ops:
        now = emitter.emit(op, now)
    return emitter.trace


@pytest.fixture(scope="module")
def mixed_trace():
    addr = PhysicalAddress(0, 0, 0, 0, 2, 0)
    return emit_ops([
        encode_program(GEOM, ASYNC, addr),
        encode_program(GEOM, ASYNC, addr._replace(page=1)),
        encode_read(GEOM, ASYNC, addr),
        encode_erase(GEOM, ASYNC, addr._replace(block=3)),
        encode_reset(),
        encode_read_id(),
    ])


class TestAnalyzer:
    def test_specs_ordered_by_capability(self):
        assert TLA7000.sample_rate_hz > BENCH.sample_rate_hz > HOBBYIST.sample_rate_hz
        assert TLA7000.price_usd == 20_000

    def test_capture_respects_buffer(self, mixed_trace):
        tiny = AnalyzerSpec("tiny", 100e6, buffer_samples=1000, price_usd=1)
        capture = LogicAnalyzer(tiny).capture(mixed_trace)
        assert capture.num_samples == 1000

    def test_window_ns(self):
        spec = AnalyzerSpec("x", 1e9, 1000, 1)
        assert spec.window_ns() == 1000.0

    def test_trigger_skips_idle(self):
        addr = PhysicalAddress(0, 0, 0, 0, 1, 0)
        emitter = SignalEmitter(ASYNC)
        emitter.emit(encode_program(GEOM, ASYNC, addr), 5_000_000)
        capture = LogicAnalyzer(TLA7000).capture_triggered(emitter.trace)
        assert capture is not None
        assert capture.samples["t"][0] >= 4_000_000  # skipped the idle 5 ms

    def test_trigger_none_when_idle(self):
        from repro.flash.signals import SignalTrace
        assert LogicAnalyzer(TLA7000).capture_triggered(SignalTrace()) is None

    def test_windows_cover_long_trace(self):
        addr = PhysicalAddress(0, 0, 0, 0, 1, 0)
        emitter = SignalEmitter(ASYNC)
        now = 0
        for page in range(8):
            now = emitter.emit(
                encode_program(GEOM, ASYNC, addr._replace(page=page)), now + 50_000
            )
        small = AnalyzerSpec("small", 200e6, buffer_samples=120_000, price_usd=1)
        captures = LogicAnalyzer(small).windows(emitter.trace)
        assert len(captures) >= 2


class TestDecoder:
    def test_decodes_all_op_kinds(self, mixed_trace):
        result = decode_capture(LogicAnalyzer(TLA7000).capture(mixed_trace))
        names = [op.name for op in result.ops]
        assert names == ["program", "program", "read", "erase", "reset", "read_id"]
        assert result.stats.clean

    def test_program_details(self, mixed_trace):
        result = decode_capture(LogicAnalyzer(TLA7000).capture(mixed_trace))
        program = result.ops[0]
        assert program.data_bytes == GEOM.page_size
        assert program.row == 2 * GEOM.pages_per_block
        assert program.busy_ns == pytest.approx(ASYNC.program_ns, rel=0.05)

    def test_read_busy_is_tr(self, mixed_trace):
        result = decode_capture(LogicAnalyzer(TLA7000).capture(mixed_trace))
        read = [op for op in result.ops if op.name == "read"][0]
        assert read.busy_ns == pytest.approx(ASYNC.read_ns, rel=0.05)

    def test_erase_row_block_aligned(self, mixed_trace):
        result = decode_capture(LogicAnalyzer(TLA7000).capture(mixed_trace))
        erase = [op for op in result.ops if op.name == "erase"][0]
        assert erase.row == 3 * GEOM.pages_per_block
        assert erase.busy_ns == pytest.approx(ASYNC.erase_ns, rel=0.05)

    def test_bench_analyzer_still_decodes(self, mixed_trace):
        result = decode_capture(LogicAnalyzer(BENCH).capture(mixed_trace))
        assert [op.name for op in result.ops][:4] == [
            "program", "program", "read", "erase",
        ]

    def test_hobbyist_analyzer_fails(self, mixed_trace):
        """The '$20,000 analyzer' point: a 10 MHz toy cannot decode."""
        result = decode_capture(LogicAnalyzer(HOBBYIST).capture(mixed_trace))
        assert not result.stats.clean or len(result.ops) < 6

    def test_undersampled_data_burst_undercounted(self, mixed_trace):
        bench = decode_capture(LogicAnalyzer(BENCH).capture(mixed_trace))
        # 100 MHz on a 25 ns/byte bus: strobes at 40 MHz need >80 MHz,
        # so byte counts survive, but a 4x slower instrument loses them.
        slow = AnalyzerSpec("slow", 25e6, 4_000_000, 400)
        slow_result = decode_capture(LogicAnalyzer(slow).capture(mixed_trace))
        ok = [op.data_bytes for op in bench.ops if op.name == "program"]
        bad = [op.data_bytes for op in slow_result.ops if op.name == "program"]
        assert all(b == GEOM.page_size for b in ok)
        assert all(b is None or b < GEOM.page_size for b in bad)


class TestInference:
    def make_ops(self, programs=20, reads=5, erases=3):
        addr = PhysicalAddress(0, 0, 0, 0, 0, 0)
        ops = []
        for i in range(programs):
            block, page = divmod(i, GEOM.pages_per_block)
            ops.append(encode_program(GEOM, ASYNC,
                                      addr._replace(block=block, page=page)))
        for i in range(reads):
            ops.append(encode_read(GEOM, ASYNC, addr._replace(page=i)))
        for i in range(erases):
            ops.append(encode_erase(GEOM, ASYNC, addr._replace(block=i + 2)))
        # Long traces exceed one buffer: decode across re-armed windows.
        return decode_trace_windows(
            emit_ops(ops), LogicAnalyzer(TLA7000)
        ).ops

    def test_page_size_inferred(self):
        report = infer_ftl_features(self.make_ops())
        assert report.page_size_bytes == GEOM.page_size

    def test_pages_per_block_from_erase_rows(self):
        report = infer_ftl_features(self.make_ops(erases=4))
        assert report.pages_per_block == GEOM.pages_per_block

    def test_timings_recovered(self):
        report = infer_ftl_features(self.make_ops())
        assert report.t_prog_us == pytest.approx(ASYNC.program_ns / 1000, rel=0.05)
        assert report.t_read_us == pytest.approx(ASYNC.read_ns / 1000, rel=0.05)
        assert report.t_erase_us == pytest.approx(ASYNC.erase_ns / 1000, rel=0.05)

    def test_sequential_fraction_high_for_sequential(self):
        report = infer_ftl_features(self.make_ops(programs=16, reads=0, erases=0))
        assert report.sequential_fraction > 0.9

    def test_channel_write_amplification(self):
        ops = self.make_ops(programs=10, reads=0, erases=0)
        host = [HostOpRecord("write", 0, 1e12, sectors=5)]
        report = infer_ftl_features(ops, host, sector_size=4096)
        # 10 page programs (4 KB pages) for 5 host sectors -> WA = 2.
        assert report.channel_write_amplification == pytest.approx(2.0)

    def test_background_ops_detected(self):
        ops = self.make_ops(programs=4, reads=0, erases=0)
        # Host was only active before the flash ops started.
        host = [HostOpRecord("write", 0, 1, sectors=1)]
        report = infer_ftl_features(ops, host)
        assert report.background_ops == 4

    def test_report_rows_render(self):
        report = infer_ftl_features(self.make_ops())
        rows = report.rows()
        assert any("page size" in k for k, _ in rows)


class TestSignalActivity:
    def test_lanes_shape_and_render(self, mixed_trace):
        capture = LogicAnalyzer(BENCH).capture(mixed_trace)
        activity = signal_activity(capture, bins=32)
        assert len(activity.control) == 32
        assert activity.busy.max() > 0.5  # long tPROG busy visible
        text = activity.render()
        assert "ctrl" in text and "busy" in text and "#" in text

    def test_empty_capture(self):
        from repro.flash.signals import SignalTrace
        capture = LogicAnalyzer(BENCH).capture(SignalTrace())
        activity = signal_activity(capture)
        assert len(activity.control) == 0
