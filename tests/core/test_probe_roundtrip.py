"""Property: any op sequence survives emit -> sample -> decode."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.probe.analyzer import AnalyzerSpec, LogicAnalyzer
from repro.core.probe.decoder import decode_capture
from repro.flash.geometry import Geometry, PhysicalAddress
from repro.flash.onfi import encode_erase, encode_program, encode_read
from repro.flash.timing import profile

GEOM = Geometry(
    channels=1, chips_per_channel=1, dies_per_chip=1, planes_per_die=1,
    blocks_per_plane=8, pages_per_block=16, page_size=2048, sector_size=2048,
)
ASYNC = profile("async")

#: generous instrument so the property tests the codec, not the sampler.
LAB = AnalyzerSpec("lab", sample_rate_hz=400e6, buffer_samples=30_000_000,
                   price_usd=0)

op_strategy = st.tuples(
    st.sampled_from(["program", "read", "erase"]),
    st.integers(0, GEOM.blocks_per_plane - 1),
    st.integers(0, GEOM.pages_per_block - 1),
)


@settings(max_examples=20, deadline=None)
@given(st.lists(op_strategy, min_size=1, max_size=5))
def test_emit_sample_decode_roundtrip(ops):
    from repro.flash.signals import SignalEmitter

    emitter = SignalEmitter(ASYNC)
    now = 0
    expected = []
    block_pages = {}  # respect sequential programming per block
    for kind, block, page in ops:
        addr = PhysicalAddress(0, 0, 0, 0, block, page)
        if kind == "program":
            page = block_pages.get(block, 0)
            if page >= GEOM.pages_per_block:
                continue
            block_pages[block] = page + 1
            addr = addr._replace(page=page)
            onfi = encode_program(GEOM, ASYNC, addr)
        elif kind == "read":
            onfi = encode_read(GEOM, ASYNC, addr)
        else:
            onfi = encode_erase(GEOM, ASYNC, addr._replace(page=0))
            block_pages[block] = 0
        now = emitter.emit(onfi, now)
        expected.append((kind, block, addr.page if kind != "erase" else 0))
    result = decode_capture(LogicAnalyzer(LAB).capture(emitter.trace))
    assert result.stats.clean
    decoded = [
        (op.name, op.row // GEOM.pages_per_block if op.row is not None else None,
         op.row % GEOM.pages_per_block if op.row is not None else None)
        for op in result.ops
    ]
    assert len(decoded) == len(expected)
    for (kind, block, page), (name, dec_block, dec_page) in zip(expected, decoded):
        assert name == kind
        assert dec_block == block
        if kind != "erase":
            assert dec_page == page
        # Busy durations match the timing profile.
    for op in result.ops:
        target = {"program": ASYNC.program_ns, "read": ASYNC.read_ns,
                  "erase": ASYNC.erase_ns}[op.name]
        assert abs(op.busy_ns - target) / target < 0.05
