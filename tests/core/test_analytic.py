"""Analytic WAF models: math properties and simulator agreement."""

import numpy as np
import pytest

from repro.core.modeling.analytic import (
    greedy_victim_valid_fraction,
    measure_steady_waf,
    waf_greedy_gc,
    waf_random_gc,
)


class TestClosedForms:
    def test_empty_drive_no_amplification(self):
        assert waf_random_gc(0.0) == 1.0
        assert waf_greedy_gc(0.0) == 1.0

    def test_monotone_in_utilization(self):
        us = np.linspace(0.1, 0.95, 18)
        for model in (waf_random_gc, waf_greedy_gc):
            values = [model(float(u)) for u in us]
            assert all(b > a for a, b in zip(values, values[1:]))

    def test_greedy_beats_random_everywhere(self):
        for u in np.linspace(0.05, 0.95, 19):
            assert waf_greedy_gc(float(u)) < waf_random_gc(float(u))

    def test_fixed_point_satisfied(self):
        for u in (0.3, 0.6, 0.9):
            v = greedy_victim_valid_fraction(u)
            assert (v - 1.0) / np.log(v) == pytest.approx(u, rel=1e-6)

    def test_victim_fraction_below_mean(self):
        """Greedy's victims are emptier than the average block."""
        for u in (0.5, 0.8, 0.9):
            assert greedy_victim_valid_fraction(u) < u

    def test_domain_checked(self):
        with pytest.raises(ValueError):
            waf_random_gc(1.0)
        with pytest.raises(ValueError):
            waf_greedy_gc(-0.1)


class TestSimulatorAgreement:
    @pytest.fixture(scope="class")
    def measurements(self):
        return {
            policy: measure_steady_waf(0.25, policy, measure_writes=12_000)
            for policy in ("greedy", "random")
        }

    def test_random_gc_matches_model(self, measurements):
        m = measurements["random"]
        predicted = waf_random_gc(m.utilization)
        assert m.waf_gc == pytest.approx(predicted, rel=0.35)

    def test_greedy_gc_bounded_by_model(self, measurements):
        """Mean-field greedy assumes infinitely large blocks; with finite
        blocks, valid-count variance hands greedy emptier victims, so
        the simulation sits at or below the model."""
        m = measurements["greedy"]
        predicted = waf_greedy_gc(m.utilization)
        assert m.waf_gc <= predicted * 1.15
        assert m.waf_gc > 1.2  # but GC genuinely costs something

    def test_policy_ordering_matches_theory(self, measurements):
        assert measurements["greedy"].waf_gc < measurements["random"].waf_gc
