"""JTAG toolkit: TAP state machine, bit-banged probe, debugger, discovery."""

import pytest

from repro.core.jtag.dap import JtagProbe
from repro.core.jtag.debugger import Debugger
from repro.core.jtag.discovery import (
    analyze_update_file,
    attribute_core_roles,
    candidate_map_bases,
    discover_pslc_index,
    discover_translation_map,
)
from repro.core.jtag.tap import Ir, TapController, TapState
from repro.ssd.firmware.device import IDCODE, HackableSSD


@pytest.fixture()
def dev():
    return HackableSSD(scale=2)


@pytest.fixture()
def probe(dev):
    probe = JtagProbe(TapController(dev, IDCODE))
    probe.reset()
    return probe


class TestTapStateMachine:
    def test_reset_from_anywhere(self, dev):
        tap = TapController(dev, IDCODE)
        # Wander around, then 5 TMS=1 clocks must reach reset.
        for tms in (0, 1, 0, 0, 0, 1, 1):
            tap.clock(tms, 0)
        for _ in range(5):
            tap.clock(1, 0)
        assert tap.state is TapState.TEST_LOGIC_RESET

    def test_reset_selects_idcode(self, dev):
        tap = TapController(dev, IDCODE)
        assert tap.ir == int(Ir.IDCODE)

    def test_ir_capture_lsb_is_one(self, dev):
        """IEEE 1149.1 mandates IR capture pattern xxx1."""
        probe = JtagProbe(TapController(dev, IDCODE))
        probe.reset()
        probe._to_shift_ir()
        first_bit = probe.tap.clock(0, 0)
        assert first_bit == 1

    def test_full_state_walk(self, dev):
        """DR path: idle -> select -> capture -> shift -> exit -> update."""
        tap = TapController(dev, IDCODE)
        tap.clock(0, 0)  # -> run-test/idle
        for tms, expected in [
            (1, TapState.SELECT_DR),
            (0, TapState.CAPTURE_DR),
            (0, TapState.SHIFT_DR),
            (1, TapState.EXIT1_DR),
            (0, TapState.PAUSE_DR),
            (1, TapState.EXIT2_DR),
            (1, TapState.UPDATE_DR),
            (0, TapState.RUN_TEST_IDLE),
        ]:
            tap.clock(tms, 0)
            assert tap.state is expected

    def test_tck_counted(self, dev):
        tap = TapController(dev, IDCODE)
        tap.clock(0, 0)
        tap.clock(1, 0)
        assert tap.stats.tck_cycles == 2


class TestProbeOperations:
    def test_idcode(self, probe):
        assert probe.idcode() == IDCODE

    def test_memory_word_roundtrip(self, dev, probe):
        sram = dev.memory_map.sram_base
        probe.write_word(sram + 0x40, 0xCAFEBABE)
        assert probe.read_word(sram + 0x40) == 0xCAFEBABE

    def test_read_block_autoincrement(self, dev, probe):
        sram = dev.memory_map.sram_base
        for i in range(4):
            probe.write_word(sram + i * 4, 0x100 + i)
        assert probe.read_block(sram, 4) == [0x100, 0x101, 0x102, 0x103]

    def test_read_bytes_unaligned(self, dev, probe):
        sram = dev.memory_map.sram_base
        probe.write_word(sram, 0x44332211)
        probe.write_word(sram + 4, 0x88776655)
        assert probe.read_bytes(sram + 1, 4) == bytes([0x22, 0x33, 0x44, 0x55])

    def test_pc_sampling_tracks_activity(self, dev, probe):
        idle = probe.sample_pc(1)
        dev.write_sectors(2, 1)  # even LBA -> core 1 busy
        assert probe.sample_pc(1) != idle

    def test_halt_resume(self, dev, probe):
        probe.halt(1)
        assert probe.is_halted(1)
        assert dev.is_halted(1)
        probe.resume(1)
        assert not probe.is_halted(1)

    def test_rom_matches_over_jtag(self, dev, probe):
        core0 = dev.firmware.section("core0")
        dumped = probe.read_bytes(core0.load_addr, len(core0.data))
        assert dumped == core0.data

    def test_bitbanging_is_expensive(self, dev, probe):
        before = probe.tck_cycles
        probe.read_word(dev.memory_map.sram_base)
        cost = probe.tck_cycles - before
        assert cost > 50  # a single word costs dozens of TCKs


class TestDebugger:
    def test_check_connection(self, probe):
        debugger = Debugger(probe)
        assert debugger.check_connection(IDCODE) == IDCODE

    def test_connection_mismatch(self, probe):
        debugger = Debugger(probe)
        with pytest.raises(ConnectionError):
            debugger.check_connection(0x12345678)

    def test_diff_region_detects_sram_change(self, dev, probe):
        debugger = Debugger(probe)
        sram = dev.memory_map.sram_base
        changed = debugger.diff_region(
            sram, 64, lambda: dev.write_mem(sram + 10, b"\x77")
        )
        assert changed == [10]

    def test_find_strings(self, dev, probe):
        debugger = Debugger(probe)
        strings_section = dev.firmware.section("strings")
        found = debugger.find_strings(strings_section.load_addr,
                                      len(strings_section.data))
        assert "TurboWrite" in found

    def test_profile_pcs(self, dev, probe):
        debugger = Debugger(probe)
        profile = debugger.profile_pcs(
            lambda i: dev.write_sectors(2 * i, 1), iterations=6
        )
        assert len(profile.samples[0]) == 6
        assert profile.hot_range(0) is not None


class TestFirmwareAnalysis:
    def test_analysis_finds_structure(self, dev):
        analysis = analyze_update_file(dev.firmware_update_file)
        assert analysis.keystream_period == 64
        assert set(analysis.section_names) >= {"core0", "core1", "core2"}
        assert "core0" in analysis.lsb_dispatch_sections
        assert any("TurboWrite" in s for s in analysis.strings)

    def test_hash_idiom_recovered_from_code(self, dev):
        """Static analysis lifts the pSLC hash function out of the
        flash cores' disassembly."""
        analysis = analyze_update_file(dev.firmware_update_file)
        assert analysis.hash_idioms
        idiom = analysis.hash_idioms[0]
        assert idiom.shift == 5
        assert idiom.buckets == dev.memory_map.pslc_buckets
        # And it actually matches the device's bucket placement.
        for lpn in (0, 17, 999):
            assert ((lpn ^ (lpn >> idiom.shift)) & idiom.mask
                    ) == dev.memory_map.pslc_bucket_of(lpn)

    def test_dram_pointers_filtered(self, dev):
        analysis = analyze_update_file(dev.firmware_update_file)
        pointers = analysis.dram_pointers()
        assert all(0x20000000 <= p < 0x40000000
                   for ptrs in pointers.values() for p in ptrs)

    def test_candidate_bases_match_device(self, dev):
        analysis = analyze_update_file(dev.firmware_update_file)
        arrays, others = candidate_map_bases(analysis)
        assert arrays == list(dev.memory_map.map_array_bases)
        assert dev.memory_map.pslc_index_base in others

    def test_discovery_tracks_artifact_not_convention(self, dev):
        """Scramble with a different key: the attack still recovers it,
        proving the pipeline reads the artifact."""
        from repro.ssd.firmware.obfuscation import obfuscate
        rescrambled = obfuscate(dev.firmware_plain, seed=0x99, period=128)
        analysis = analyze_update_file(rescrambled)
        assert analysis.keystream_period == 128
        arrays, _ = candidate_map_bases(analysis)
        assert arrays == list(dev.memory_map.map_array_bases)


class TestDynamicDiscovery:
    @pytest.fixture(scope="class")
    def study(self):
        """One shared scale-2 study (discovery is JTAG-expensive)."""
        dev = HackableSSD(scale=2)
        probe = JtagProbe(TapController(dev, IDCODE))
        probe.reset()
        debugger = Debugger(probe)
        analysis = analyze_update_file(dev.firmware_update_file)
        arrays, others = candidate_map_bases(analysis)
        roles = attribute_core_roles(debugger, dev, iterations=12)
        map_disc = discover_translation_map(debugger, dev, arrays,
                                            verify_probes=8, prefill=2048)
        pslc = discover_pslc_index(debugger, dev, others)
        return dev, roles, map_disc, pslc

    def test_core_roles(self, study):
        _, roles, _, _ = study
        assert roles.host_interface_core == 0
        assert roles.even_core == 1
        assert roles.odd_core == 2
        assert roles.split_by_lsb

    def test_map_layout_recovered(self, study):
        dev, _, map_disc, _ = study
        assert map_disc.num_arrays == 8
        assert map_disc.select_modulus == 8
        assert map_disc.entry_bytes == 4
        assert map_disc.entries_fit
        assert map_disc.array_bases == list(dev.memory_map.map_array_bases)

    def test_map_overhead_measured(self, study):
        _, _, map_disc, _ = study
        assert map_disc.measured_map_bytes > map_disc.theoretical_map_bytes > 0
        assert map_disc.entry_bits_used < 32

    def test_pslc_index_classified_hashed(self, study):
        dev, _, _, pslc = study
        assert pslc.found
        assert pslc.base == dev.memory_map.pslc_index_base
        assert pslc.looks_hashed
