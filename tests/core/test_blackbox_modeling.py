"""Black-box analysis (Fig 4) and fidelity studies (Fig 3) at test scale."""

import numpy as np
import pytest

from repro.core.blackbox.nand_page import sequential_write_sweep
from repro.core.blackbox.waf import default_jobs, prime, run_waf_study
from repro.core.modeling.fidelity import (
    MQSIM_ERROR_MARGIN,
    FtlVariant,
    paper_variants,
    run_fidelity_study,
)
from repro.ssd.device import SimulatedSSD
from repro.ssd.presets import mqsim_baseline, mx500_like, tiny


def small_mx500():
    return SimulatedSSD(mx500_like(scale=4), model="mx500-test")


class TestNandPageSweep:
    def test_converges_to_30kb_with_rain(self):
        device = small_mx500()
        sector = device.sector_size
        estimate = sequential_write_sweep(
            device, sizes_bytes=[sector * (1 << i) for i in range(3, 10)]
        )
        # 32 KB pages, 15+1 RAIN: 32 KB * 15/16 = 30 KB per NAND page.
        assert estimate.converged_bytes_per_page == pytest.approx(30720, rel=0.08)

    def test_small_writes_below_asymptote(self):
        device = small_mx500()
        estimate = sequential_write_sweep(device)
        assert estimate.points[0].bytes_per_page < estimate.converged_bytes_per_page

    def test_without_rain_converges_to_page_size(self):
        config = mx500_like(scale=4).with_changes(rain_stripe=0)
        device = SimulatedSSD(config)
        sector = device.sector_size
        estimate = sequential_write_sweep(
            device, sizes_bytes=[sector * (1 << i) for i in range(3, 10)]
        )
        assert estimate.converged_bytes_per_page == pytest.approx(
            config.geometry.page_size, rel=0.08
        )

    def test_points_record_raw_counts(self):
        device = small_mx500()
        estimate = sequential_write_sweep(device, sizes_bytes=[device.sector_size * 64])
        point = estimate.points[0]
        assert point.nand_pages > 0
        assert point.write_bytes == device.sector_size * 64


class TestWafStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_waf_study(
            lambda: SimulatedSSD(mx500_like(scale=2)),
            io_count=6000,
            prime_fraction=0.5,
        )

    def test_three_separate_workloads(self, study):
        assert [w.name for w in study.separate] == [
            "4k-uniform", "4k-8020", "16k-uniform",
        ]
        assert all(w.waf > 0 for w in study.separate)

    def test_separate_wafs_comparable(self, study):
        """Separately, in the priming stage, the three workloads look
        benign and similar — which is exactly what makes the additive
        prediction seem safe."""
        wafs = [w.waf for w in study.separate]
        assert max(wafs) / min(wafs) < 1.5

    def test_mixed_exceeds_expectation(self, study):
        """The paper's headline: the additive model under-predicts."""
        assert study.measured_mixed_waf > study.expected_mixed_waf
        assert study.extrapolation_error > 1.2

    def test_expected_is_weighted_average(self, study):
        weights = np.array([w.requests for w in study.separate], dtype=float)
        wafs = np.array([w.waf for w in study.separate])
        expected = float((weights * wafs).sum() / weights.sum())
        assert study.expected_mixed_waf == pytest.approx(expected)

    def test_prime_fills_address_space(self):
        device = SimulatedSSD(tiny())
        prime(device, fraction=0.5)
        mapped = device.ftl.mapping.mapped_count()
        assert mapped >= int(device.num_sectors * 0.45)


class TestFidelityStudy:
    @pytest.fixture(scope="class")
    def study(self):
        base = mqsim_baseline(scale=4)
        return run_fidelity_study(
            base, block_sizes_sectors=(1, 4), io_count=2000,
            precondition_fraction=0.75,
        )

    def test_all_variants_measured(self, study):
        assert set(study.variants()) == {
            "baseline", "gc=randomized_greedy", "cache=mapping", "alloc=PDWC",
        }
        assert study.block_sizes() == [1, 4]

    def test_p99_spread_substantial(self, study):
        """Fig 3's point: tails differ wildly across basic FTL variants."""
        spreads = [study.p99_spread(bs) for bs in study.block_sizes()]
        assert max(spreads) > 2.0

    def test_tail_curves_monotone(self, study):
        for result in study.results:
            assert np.all(np.diff(result.tail_values_us) >= 0)

    def test_mean_divergence_small_relative_to_tail(self, study):
        """Means cluster; tails spread — the §2.1 argument."""
        bs = study.block_sizes()[0]
        divergences = list(study.mean_divergence(bs).values())
        assert min(divergences) < 3 * MQSIM_ERROR_MARGIN
        assert study.p99_spread(bs) > 1.0 + max(min(divergences), 0.01)

    def test_within_margin_table(self, study):
        table = study.within_mqsim_margin(study.block_sizes()[0])
        assert set(table) == {
            "gc=randomized_greedy", "cache=mapping", "alloc=PDWC",
        }

    def test_custom_variant_list(self):
        base = tiny()
        study = run_fidelity_study(
            base,
            block_sizes_sectors=(1,),
            io_count=300,
            precondition_fraction=0.5,
            variants=[FtlVariant("only", base)],
        )
        assert study.variants() == ["only"]

    def test_unknown_lookup_raises(self, study):
        with pytest.raises(KeyError):
            study.of("nope", 1)


class TestPaperVariants:
    def test_knobs_flipped(self):
        base = mqsim_baseline(scale=4)
        variants = {v.name: v.config for v in paper_variants(base)}
        assert variants["baseline"] == base
        assert variants["gc=randomized_greedy"].gc_policy == "randomized_greedy"
        assert variants["cache=mapping"].cache_designation == "mapping"
        assert variants["alloc=PDWC"].allocation_scheme == "PDWC"
