"""SSDCheck-style latency probes track device configuration."""

import pytest

from repro.core.blackbox.ssdcheck import (
    detect_checkpoint_interval,
    detect_fast_buffer,
    detect_write_buffer,
)
from repro.ssd.presets import vertex2_like
from repro.ssd.timed import TimedSSD


class TestWriteBufferProbe:
    @pytest.mark.parametrize("capacity", [64, 128, 256])
    def test_detects_configured_capacity(self, capacity):
        config = vertex2_like(scale=2).with_changes(cache_sectors=capacity)
        device = TimedSSD(config)
        probe = detect_write_buffer(device)
        assert probe.found
        assert probe.estimated_sectors == pytest.approx(capacity, abs=4)

    def test_evidence_returned(self):
        device = TimedSSD(vertex2_like(scale=2).with_changes(cache_sectors=64))
        probe = detect_write_buffer(device)
        assert len(probe.latencies_us) == probe.estimated_sectors + 1
        # Everything before the cliff completed at controller speed.
        overhead_us = device.controller_overhead_ns / 1000
        assert all(lat <= overhead_us * 4 for lat in probe.latencies_us[:-1])

    def test_not_found_within_small_burst(self):
        config = vertex2_like(scale=2).with_changes(cache_sectors=512)
        device = TimedSSD(config)
        probe = detect_write_buffer(device, max_burst=100)
        assert not probe.found


class TestCheckpointProbe:
    @pytest.mark.parametrize("interval", [512, 2048])
    def test_detects_interval(self, interval):
        config = vertex2_like(scale=1).with_changes(
            mapping_sync_interval=interval, cache_sectors=64,
            mapping_dirty_tp_limit=256, mapping_tp_lpns=256,
        )
        device = TimedSSD(config)
        probe = detect_checkpoint_interval(device, writes=8000)
        assert probe.found
        assert probe.estimated_interval == pytest.approx(interval, rel=0.05)

    def test_spike_positions_reported(self):
        config = vertex2_like(scale=1).with_changes(
            mapping_sync_interval=1024, cache_sectors=64,
            mapping_dirty_tp_limit=256, mapping_tp_lpns=256,
        )
        device = TimedSSD(config)
        probe = detect_checkpoint_interval(device, writes=6000)
        assert len(probe.spike_positions) >= 3


class TestFastBufferProbe:
    def test_detects_drain_onset(self):
        config = vertex2_like(scale=2).with_changes(
            pslc_blocks=8, pslc_drain_threshold=0.9, cache_sectors=16,
        )
        device = TimedSSD(config)
        capacity = (8 * config.geometry.pages_per_block
                    * config.geometry.sectors_per_page)
        onset = int(capacity * config.pslc_drain_threshold)
        probe = detect_fast_buffer(device, max_sectors=6000)
        assert probe.found
        assert probe.estimated_sectors == pytest.approx(onset, rel=0.2)
        assert probe.early_mean_us < probe.late_mean_us

    def test_no_buffer_no_regime_change(self):
        config = vertex2_like(scale=2).with_changes(pslc_blocks=0,
                                                    cache_sectors=16)
        device = TimedSSD(config)
        probe = detect_fast_buffer(device, max_sectors=4000)
        assert not probe.found
