"""EXT4 and F2FS model behaviour, including their block-level signatures."""

import pytest

from repro.fs.ext4 import Ext4Model
from repro.fs.f2fs import F2fsModel
from repro.fs.vfs import CounterBackend, FsError
from repro.ssd.device import SimulatedSSD
from repro.ssd.presets import tiny


def counter_fs(cls, **kwargs):
    device = SimulatedSSD(tiny())
    backend = CounterBackend(device)
    if cls is F2fsModel:
        kwargs.setdefault("segment_sectors", 32)
        kwargs.setdefault("checkpoint_sectors", 8)
        kwargs.setdefault("clean_low_water", 2)
    else:
        kwargs.setdefault("journal_sectors", 32)
        kwargs.setdefault("metadata_sectors", 32)
    return cls(backend, **kwargs), device


class TestCommonSemantics:
    @pytest.mark.parametrize("cls", [Ext4Model, F2fsModel])
    def test_create_and_read(self, cls):
        fs, device = counter_fs(cls)
        fs.create("a", 10)
        assert fs.exists("a")
        assert fs.file_sectors("a") == 10
        fs.read("a")
        assert device.smart.host_sectors_read >= 10

    @pytest.mark.parametrize("cls", [Ext4Model, F2fsModel])
    def test_duplicate_create_rejected(self, cls):
        fs, _ = counter_fs(cls)
        fs.create("a", 4)
        with pytest.raises(FsError):
            fs.create("a", 4)

    @pytest.mark.parametrize("cls", [Ext4Model, F2fsModel])
    def test_delete_then_missing(self, cls):
        fs, _ = counter_fs(cls)
        fs.create("a", 4)
        fs.delete("a")
        assert not fs.exists("a")
        with pytest.raises(FsError):
            fs.read("a")

    @pytest.mark.parametrize("cls", [Ext4Model, F2fsModel])
    def test_append_grows_file(self, cls):
        fs, _ = counter_fs(cls)
        fs.create("a", 4)
        fs.append("a", 6)
        assert fs.file_sectors("a") == 10

    @pytest.mark.parametrize("cls", [Ext4Model, F2fsModel])
    def test_overwrite_bounds_checked(self, cls):
        fs, _ = counter_fs(cls)
        fs.create("a", 4)
        with pytest.raises(FsError):
            fs.overwrite("a", 2, 5)

    @pytest.mark.parametrize("cls", [Ext4Model, F2fsModel])
    def test_space_reuse_after_delete(self, cls):
        fs, _ = counter_fs(cls)
        for round_ in range(6):
            fs.create("a", 50)
            fs.delete("a")
        fs.create("final", 50)  # must not run out of space


class TestExt4Signature:
    def test_overwrite_is_in_place(self):
        fs, _ = counter_fs(Ext4Model)
        fs.create("a", 8)
        extents_before = list(fs.files["a"].extents)
        fs.overwrite("a", 0, 4)
        assert fs.files["a"].extents == extents_before

    def test_journal_writes_are_circular(self):
        fs, device = counter_fs(Ext4Model, journal_sectors=4)
        before = fs._journal_cursor
        for i in range(6):
            fs.create(f"f{i}", 2)
        assert fs._journal_cursor < 4  # wrapped

    def test_no_discard_by_default(self):
        fs, device = counter_fs(Ext4Model)
        fs.create("a", 8)
        trims_before = device.ftl.stats.trimmed_sectors
        fs.delete("a")
        assert device.ftl.stats.trimmed_sectors == trims_before

    def test_discard_option(self):
        fs, device = counter_fs(Ext4Model, discard=True)
        fs.create("a", 8)
        fs.delete("a")
        assert device.ftl.stats.trimmed_sectors >= 8

    def test_aged_allocations_fragment(self):
        fs, _ = counter_fs(Ext4Model)
        for i in range(12):
            fs.create(f"f{i}", 10)
        for i in range(0, 12, 2):
            fs.delete(f"f{i}")
        fs.create("big", 40)
        assert len(fs.files["big"].extents) > 1

    def test_too_small_device_rejected(self):
        device = SimulatedSSD(tiny())
        backend = CounterBackend(device)
        with pytest.raises(FsError):
            Ext4Model(backend, journal_sectors=device.num_sectors,
                      metadata_sectors=16)


class TestF2fsSignature:
    def test_overwrite_relocates(self):
        fs, _ = counter_fs(F2fsModel)
        fs.create("a", 8)
        before = list(fs._locs["a"])
        fs.overwrite("a", 0, 4)
        after = fs._locs["a"]
        assert after[:4] != before[:4]  # out of place
        assert after[4:] == before[4:]

    def test_delete_discards(self):
        fs, device = counter_fs(F2fsModel)
        fs.create("a", 8)
        trims_before = device.ftl.stats.trimmed_sectors
        fs.delete("a")
        assert device.ftl.stats.trimmed_sectors > trims_before

    def test_writes_are_log_sequential(self):
        """Consecutive creates land at strictly increasing LBAs."""
        fs, _ = counter_fs(F2fsModel)
        fs.create("a", 4)
        fs.create("b", 4)
        a_end = fs.files["a"].extents[-1].end
        b_start = fs.files["b"].extents[0].start
        assert b_start >= a_end

    def test_cleaner_reclaims_segments(self):
        fs, _ = counter_fs(F2fsModel, segment_sectors=16)
        # Sprinkle never-rewritten cold sectors through every segment so
        # no segment is ever fully dead: cleaning must move live data.
        fs.create("hot", 8)
        fs.create("cold", 1)
        for i in range(150):
            fs.overwrite("hot", 0, 8)
            fs.append("cold", 1)
        assert fs.cleaner_moves > 0
        assert fs.file_sectors("hot") == 8
        assert fs.file_sectors("cold") == 151

    def test_data_intact_after_cleaning(self):
        fs, _ = counter_fs(F2fsModel, segment_sectors=16)
        fs.create("keep", 10)
        fs.create("churn", 8)
        for _ in range(150):
            fs.overwrite("churn", 0, 8)
        # The cold file's locations are all owned and consistent.
        for offset, lba in enumerate(fs._locs["keep"]):
            assert fs._owner[lba] == ("data", "keep", offset)

    def test_checkpoints_written(self):
        fs, _ = counter_fs(F2fsModel, checkpoint_interval=4)
        for i in range(10):
            fs.create(f"f{i}", 2)
        assert fs.checkpoints >= 2

    def test_utilization_tracks_segments(self):
        fs, _ = counter_fs(F2fsModel)
        assert fs.utilization() == 0.0
        fs.create("a", 40)
        assert fs.utilization() > 0.0

    def test_volume_full_raises(self):
        fs, device = counter_fs(F2fsModel, segment_sectors=32, clean_low_water=2)
        with pytest.raises(FsError):
            for i in range(10_000):
                fs.create(f"f{i}", 32)
