"""Aging profiles and the file-server workload."""

import pytest

from repro.fs.aging import PROFILE_A, PROFILE_M, PROFILE_U, PROFILES, age_filesystem
from repro.fs.ext4 import Ext4Model
from repro.fs.f2fs import F2fsModel
from repro.fs.vfs import CounterBackend, TimedBackend
from repro.ssd.device import SimulatedSSD
from repro.ssd.presets import tiny
from repro.ssd.timed import TimedSSD
from repro.workloads.fileserver import (
    FileServerConfig,
    FileServerWorkload,
)


def make_ext4(timed=False):
    if timed:
        device = TimedSSD(tiny())
        backend = TimedBackend(device)
    else:
        device = SimulatedSSD(tiny())
        backend = CounterBackend(device)
    return Ext4Model(backend, journal_sectors=32, metadata_sectors=32), device


SMALL_A = PROFILE_A.__class__(
    "A", phases=((0.5, 150), (0.3, 60), (0.55, 100)),
    size_mu=1.2, size_sigma=0.6, max_file_sectors=16,
)
SMALL_M = PROFILE_M.__class__(
    "M", phases=((0.6, 150), (0.35, 80), (0.62, 120)),
    size_mu=1.8, size_sigma=0.9, max_file_sectors=48,
)


class TestAging:
    def test_u_profile_is_noop(self):
        fs, device = make_ext4()
        report = age_filesystem(fs, PROFILE_U)
        assert report.operations == 0
        assert report.final_utilization == 0.0
        assert device.smart.host_sectors_written == 0

    def test_a_profile_fills_and_fragments(self):
        fs, _ = make_ext4()
        report = age_filesystem(fs, SMALL_A, seed=1)
        assert report.files_created > 0
        assert report.files_deleted > 0
        assert 0.3 < report.final_utilization < 0.75
        assert report.fragmentation > 0.0

    def test_profiles_differ(self):
        fs_a, _ = make_ext4()
        fs_m, _ = make_ext4()
        rep_a = age_filesystem(fs_a, SMALL_A, seed=2)
        rep_m = age_filesystem(fs_m, SMALL_M, seed=2)
        assert rep_a.final_utilization != pytest.approx(
            rep_m.final_utilization, abs=1e-6
        )

    def test_aging_touches_the_device(self):
        fs, device = make_ext4()
        age_filesystem(fs, SMALL_A, seed=3)
        assert device.smart.host_sectors_written > 0

    def test_aging_f2fs(self):
        device = SimulatedSSD(tiny())
        fs = F2fsModel(CounterBackend(device), segment_sectors=32,
                       checkpoint_sectors=8, clean_low_water=2)
        report = age_filesystem(fs, SMALL_A, seed=4)
        assert report.final_utilization > 0.0

    def test_builtin_profiles_registered(self):
        assert set(PROFILES) == {"U", "A", "M"}


class TestFileServer:
    def test_prepare_populates(self):
        fs, _ = make_ext4()
        workload = FileServerWorkload(fs, FileServerConfig(working_files=10,
                                                           mean_file_sectors=4))
        workload.prepare()
        assert len(fs.files) == 10

    def test_run_counts_ops(self):
        fs, _ = make_ext4()
        workload = FileServerWorkload(
            fs, FileServerConfig(working_files=10, mean_file_sectors=4), seed=1
        )
        workload.prepare()
        result = workload.run(100)
        assert result.operations == 100
        assert result.failed_ops < 100

    def test_throughput_on_timed_backend(self):
        fs, _ = make_ext4(timed=True)
        workload = FileServerWorkload(
            fs, FileServerConfig(working_files=10, mean_file_sectors=4), seed=1
        )
        workload.prepare()
        result = workload.run(100)
        assert result.elapsed_ns > 0
        assert result.ops_per_second > 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FileServerConfig(working_files=0)
        with pytest.raises(ValueError):
            FileServerConfig(weights=(0.5, 0.5, 0.5, 0.0, 0.0))

    def test_mix_exercises_all_ops(self):
        fs, _ = make_ext4()
        workload = FileServerWorkload(
            fs, FileServerConfig(working_files=8, mean_file_sectors=4), seed=2
        )
        workload.prepare()
        workload.run(300)
        stats = fs.stats
        assert stats.creates > 8  # beyond prepare()
        assert stats.deletes > 0
        assert stats.appends > 0
        assert stats.overwrites > 0
        assert stats.reads > 0
