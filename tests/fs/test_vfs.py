"""Free-space map, extents, and backends."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fs.vfs import (
    CounterBackend,
    Extent,
    FreeSpaceMap,
    FsError,
    TimedBackend,
)
from repro.ssd.device import SimulatedSSD
from repro.ssd.presets import tiny
from repro.ssd.timed import TimedSSD


class TestFreeSpaceMap:
    def test_initial_state(self):
        space = FreeSpaceMap(100, 1000)
        assert space.free_sectors == 1000
        assert space.used_sectors == 0
        assert space.utilization() == 0.0
        assert space.fragmentation() == 0.0

    def test_allocate_contiguous(self):
        space = FreeSpaceMap(0, 100)
        extents = space.allocate(30)
        assert extents == [Extent(0, 30)]
        assert space.free_sectors == 70

    def test_allocate_splits_across_holes(self):
        space = FreeSpaceMap(0, 100)
        a = space.allocate(30)
        b = space.allocate(30)
        space.release(a)  # hole at [0, 30)
        extents = space.allocate(50)
        assert len(extents) == 2
        assert sum(e.length for e in extents) == 50

    def test_no_space(self):
        space = FreeSpaceMap(0, 10)
        with pytest.raises(FsError):
            space.allocate(11)
        with pytest.raises(ValueError):
            space.allocate(0)

    def test_release_coalesces(self):
        space = FreeSpaceMap(0, 100)
        a = space.allocate(30)
        b = space.allocate(30)
        space.release(a)
        space.release(b)
        assert space.free_extent_count() == 1
        assert space.free_sectors == 100

    def test_double_free_detected(self):
        space = FreeSpaceMap(0, 100)
        a = space.allocate(30)
        space.release(a)
        with pytest.raises(FsError):
            space.release(a)

    def test_fragmentation_metric(self):
        space = FreeSpaceMap(0, 100)
        chunks = [space.allocate(10) for _ in range(10)]
        for i in (0, 2, 4, 6):
            space.release(chunks[i])
        assert space.fragmentation() > 0
        assert space.free_extent_count() == 4


class TestBackends:
    def test_counter_backend_passthrough(self):
        device = SimulatedSSD(tiny())
        backend = CounterBackend(device)
        backend.write(0, 4)
        backend.read(0, 2)
        backend.trim(0, 1)
        backend.flush()
        assert backend.num_sectors == device.num_sectors
        assert backend.now_ns == 0
        assert device.smart.host_sectors_written == 4

    def test_timed_backend_advances_clock(self):
        device = TimedSSD(tiny())
        backend = TimedBackend(device)
        t0 = backend.now_ns
        backend.write(0, 1)
        assert backend.now_ns > t0
        backend.flush()
        backend.read(0, 1)
        assert backend.now_ns > t0


@settings(max_examples=30)
@given(st.lists(st.tuples(st.booleans(), st.integers(1, 40)), max_size=60))
def test_space_conservation_property(ops):
    """Allocated + free always equals the map size; extents never overlap."""
    space = FreeSpaceMap(0, 500)
    held = []
    for do_alloc, size in ops:
        if do_alloc:
            try:
                held.append(space.allocate(size))
            except FsError:
                pass
        elif held:
            space.release(held.pop())
    allocated = sum(e.length for extents in held for e in extents)
    assert allocated + space.free_sectors == 500
    covered = set()
    for extents in held:
        for extent in extents:
            span = set(range(extent.start, extent.end))
            assert not span & covered
            covered |= span
