"""Cross-subsystem integration: the toolkit against varied devices.

The important property: every transparency technique must *track the
device*, not a hard-coded convention — so these tests change the device
and check the discoveries follow.
"""

import numpy as np
import pytest

from repro.core.jtag.dap import JtagProbe
from repro.core.jtag.debugger import Debugger
from repro.core.jtag.discovery import (
    analyze_update_file,
    candidate_map_bases,
    discover_chunk_loading,
    discover_translation_map,
)
from repro.core.jtag.tap import TapController
from repro.core.probe.analyzer import TLA7000, LogicAnalyzer
from repro.core.probe.decoder import decode_trace_windows
from repro.core.probe.inference import infer_ftl_features
from repro.flash.geometry import Geometry
from repro.flash.timing import profile
from repro.fs.ext4 import Ext4Model
from repro.fs.f2fs import F2fsModel
from repro.fs.vfs import CounterBackend
from repro.ssd.config import SsdConfig
from repro.ssd.device import SimulatedSSD
from repro.ssd.firmware.device import IDCODE, HackableSSD
from repro.ssd.presets import evo840_like, tiny
from repro.ssd.timed import BusTap, TimedSSD


class TestProbeAgainstRealDevice:
    def probe_device(self, config):
        tap = BusTap(config.geometry, profile(config.timing_name), channel=0)
        device = TimedSSD(config, bus_tap=tap)
        for lba in range(0, min(400, device.num_sectors), 2):
            device.submit("write", lba, 2, at_ns=device.now)
        device.flush()
        result = decode_trace_windows(tap.trace, LogicAnalyzer(TLA7000))
        return infer_ftl_features(result.ops,
                                  sector_size=config.geometry.sector_size)

    def test_inferred_page_size_tracks_geometry(self):
        for page_size in (8192, 16384):
            geometry = Geometry(
                channels=2, chips_per_channel=1, dies_per_chip=1,
                planes_per_die=2, blocks_per_plane=16, pages_per_block=16,
                page_size=page_size, sector_size=4096,
            )
            config = SsdConfig(geometry=geometry, timing_name="async",
                               op_ratio=0.2, cache_sectors=16,
                               mapping_tp_lpns=128, mapping_sync_interval=512)
            report = self.probe_device(config)
            assert report.page_size_bytes == page_size

    def test_inferred_timings_track_profile(self):
        geometry = Geometry(
            channels=2, chips_per_channel=1, dies_per_chip=1,
            planes_per_die=2, blocks_per_plane=16, pages_per_block=16,
            page_size=8192, sector_size=4096,
        )
        config = SsdConfig(geometry=geometry, timing_name="async",
                           op_ratio=0.2, cache_sectors=16,
                           mapping_tp_lpns=128, mapping_sync_interval=512)
        report = self.probe_device(config)
        timing = profile("async")
        assert report.t_prog_us == pytest.approx(timing.program_ns / 1e3, rel=0.1)


class TestJtagTracksDeviceVariants:
    def make_study_parts(self, device):
        probe = JtagProbe(TapController(device, IDCODE))
        probe.reset()
        return Debugger(probe), analyze_update_file(device.firmware_update_file)

    def test_chunk_size_discovery_tracks_config(self):
        """Halve the mapping chunk: the discovered coverage halves."""
        base = evo840_like(scale=1)
        small_chunks = base.with_changes(
            mapping_chunk_lpns=15040,  # 58.75 MB instead of 117.5 MB
            mapping_resident_chunks=4,
        )
        device = HackableSSD(config=small_chunks)
        debugger, analysis = self.make_study_parts(device)
        arrays, _ = candidate_map_bases(analysis)
        chunks = discover_chunk_loading(debugger, device, arrays,
                                        max_touches=12)
        assert chunks.demand_loading
        assert chunks.chunk_bytes_logical == pytest.approx(
            15040 * 4096, rel=0.06
        )

    def test_map_discovery_on_smaller_device(self):
        device = HackableSSD(scale=2)
        debugger, analysis = self.make_study_parts(device)
        arrays, _ = candidate_map_bases(analysis)
        discovery = discover_translation_map(debugger, device, arrays,
                                             verify_probes=6, prefill=2048)
        assert discovery.entries_fit
        assert discovery.array_bases == list(device.memory_map.map_array_bases)


class TestFilesystemDeviceInteraction:
    def churn(self, fs_cls):
        device = SimulatedSSD(tiny())
        backend = CounterBackend(device)
        if fs_cls is F2fsModel:
            fs = F2fsModel(backend, segment_sectors=32, checkpoint_sectors=8,
                           clean_low_water=2)
        else:
            fs = Ext4Model(backend, journal_sectors=32, metadata_sectors=32)
        rng = np.random.default_rng(4)
        for i in range(20):
            fs.create(f"f{i}", 8)
        for _ in range(600):
            name = f"f{int(rng.integers(20))}"
            fs.overwrite(name, int(rng.integers(6)), 2)
        backend.flush()
        return device

    def test_fs_traffic_reaches_flash(self):
        for cls in (Ext4Model, F2fsModel):
            device = self.churn(cls)
            assert device.smart.host_program_pages > 0
            device.ftl.check_invariants()

    def test_f2fs_discards_reach_ftl(self):
        device = SimulatedSSD(tiny())
        fs = F2fsModel(CounterBackend(device), segment_sectors=32,
                       checkpoint_sectors=8, clean_low_water=2)
        fs.create("a", 40)
        fs.delete("a")
        assert device.ftl.stats.trimmed_sectors >= 40


class TestCounterTimedEquivalence:
    def test_fs_workload_same_flash_ops_in_both_modes(self):
        """The two execution modes are the same FTL: identical request
        streams produce identical SMART program counts."""
        from repro.workloads.engine import run_counter, run_timed
        from repro.workloads.patterns import Region
        from repro.workloads.spec import JobSpec

        config = tiny()
        counter = SimulatedSSD(config)
        timed = TimedSSD(config)
        job = JobSpec("j", "randwrite", Region(0, counter.num_sectors),
                      io_count=2500, seed=8)
        run_counter(counter, [job])
        run_timed(timed, [job])
        timed_flush = timed.flush()
        assert counter.smart.host_program_pages == timed.smart.host_program_pages
        assert counter.smart.ftl_program_pages == timed.smart.ftl_program_pages
        assert counter.smart.erase_count == timed.smart.erase_count
