"""NAND array physics: erase-before-write, sequential programming, wear."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash.geometry import Geometry
from repro.flash.nand import NO_LPN, FlashViolation, NandArray, PageState

GEOM = Geometry(
    channels=1,
    chips_per_channel=1,
    dies_per_chip=1,
    planes_per_die=1,
    blocks_per_plane=4,
    pages_per_block=8,
    page_size=4096,
    sector_size=4096,
)


@pytest.fixture
def nand():
    return NandArray(GEOM)


class TestProgram:
    def test_program_marks_page(self, nand):
        nand.program(0, lpn=42)
        assert nand.page_state[0] == PageState.PROGRAMMED
        assert nand.page_lpn[0] == 42

    def test_program_counts(self, nand):
        nand.program(0)
        nand.program(1)
        assert nand.counters.programs == 2

    def test_double_program_rejected(self, nand):
        nand.program(0)
        with pytest.raises(FlashViolation):
            nand.program(0)

    def test_out_of_order_program_rejected(self, nand):
        with pytest.raises(FlashViolation, match="sequential"):
            nand.program(1)  # page 1 before page 0

    def test_sequential_across_block_boundary_independent(self, nand):
        # Each block has its own write pointer.
        nand.program(0)
        nand.program(GEOM.pages_per_block)  # page 0 of block 1
        assert nand.block_write_ptr[0] == 1
        assert nand.block_write_ptr[1] == 1

    def test_out_of_range_rejected(self, nand):
        with pytest.raises(FlashViolation):
            nand.program(GEOM.total_pages)

    def test_oversized_payload_rejected(self):
        nand = NandArray(GEOM, store_data=True)
        with pytest.raises(FlashViolation):
            nand.program(0, data=b"x" * (GEOM.page_size + 1))


class TestRead:
    def test_read_free_page(self, nand):
        lpn, data = nand.read(0)
        assert lpn == NO_LPN
        assert data is None

    def test_read_programmed_page_lpn(self, nand):
        nand.program(0, lpn=7)
        lpn, _ = nand.read(0)
        assert lpn == 7

    def test_read_counts(self, nand):
        nand.read(0)
        nand.read(0)
        assert nand.counters.reads == 2

    def test_data_round_trip_when_stored(self):
        nand = NandArray(GEOM, store_data=True)
        nand.program(0, lpn=1, data=b"hello")
        lpn, data = nand.read(0)
        assert (lpn, data) == (1, b"hello")

    def test_data_not_stored_by_default(self, nand):
        nand.program(0, lpn=1, data=b"hello")
        _, data = nand.read(0)
        assert data is None

    def test_read_out_of_range(self, nand):
        with pytest.raises(FlashViolation):
            nand.read(-1)


class TestErase:
    def test_erase_frees_pages(self, nand):
        for page in range(GEOM.pages_per_block):
            nand.program(page, lpn=page)
        nand.erase(0)
        assert np.all(nand.page_state[: GEOM.pages_per_block] == PageState.FREE)
        assert np.all(nand.page_lpn[: GEOM.pages_per_block] == NO_LPN)

    def test_erase_resets_write_pointer(self, nand):
        nand.program(0)
        nand.erase(0)
        assert nand.block_write_ptr[0] == 0
        nand.program(0)  # programmable again from page 0

    def test_erase_increments_wear(self, nand):
        nand.erase(0)
        nand.erase(0)
        assert nand.block_erase_count[0] == 2

    def test_erase_only_target_block(self, nand):
        nand.program(0)
        other_first = GEOM.pages_per_block
        nand.program(other_first)
        nand.erase(0)
        assert nand.page_state[other_first] == PageState.PROGRAMMED

    def test_erase_out_of_range(self, nand):
        with pytest.raises(FlashViolation):
            nand.erase(GEOM.total_blocks)

    def test_erase_clears_stored_data(self):
        nand = NandArray(GEOM, store_data=True)
        nand.program(0, data=b"x")
        nand.erase(0)
        _, data = nand.read(0)
        assert data is None


class TestInspection:
    def test_block_stats(self, nand):
        nand.program(0)
        nand.program(1)
        stats = nand.block_stats(0)
        assert stats.programmed_pages == 2
        assert stats.write_pointer == 2
        assert stats.erase_count == 0

    def test_lpns_in_block(self, nand):
        nand.program(0, lpn=10)
        nand.program(1, lpn=11)
        lpns = nand.lpns_in_block(0)
        assert lpns[0] == 10 and lpns[1] == 11
        assert lpns[2] == NO_LPN

    def test_wear_summary(self, nand):
        nand.erase(0)
        nand.erase(0)
        nand.erase(1)
        summary = nand.wear_summary()
        assert summary["max"] == 2
        assert summary["total"] == 3

    def test_is_free(self, nand):
        assert nand.is_free(0)
        nand.program(0)
        assert not nand.is_free(0)


@settings(max_examples=30)
@given(st.lists(st.sampled_from(["program", "erase0", "erase1"]), max_size=40))
def test_write_pointer_invariant_property(ops):
    """After any op sequence, write pointer == programmed page count per block,
    and programmed pages are exactly the prefix below the pointer."""
    nand = NandArray(GEOM)
    next_page = [0, 0]
    for op in ops:
        if op == "program":
            block = 0 if next_page[0] <= next_page[1] else 1
            if next_page[block] >= GEOM.pages_per_block:
                continue
            nand.program(block * GEOM.pages_per_block + next_page[block])
            next_page[block] += 1
        elif op == "erase0":
            nand.erase(0)
            next_page[0] = 0
        else:
            nand.erase(1)
            next_page[1] = 0
    for block in (0, 1):
        start = block * GEOM.pages_per_block
        states = nand.page_state[start : start + GEOM.pages_per_block]
        ptr = int(nand.block_write_ptr[block])
        assert np.all(states[:ptr] == PageState.PROGRAMMED)
        assert np.all(states[ptr:] == PageState.FREE)
