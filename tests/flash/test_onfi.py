"""ONFI encoding: cycle sequences, row addressing, bus timing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.flash.geometry import Geometry, PhysicalAddress
from repro.flash.onfi import (
    BusCycle,
    CycleKind,
    Opcode,
    encode_erase,
    encode_program,
    encode_read,
    encode_read_id,
    encode_read_status,
    encode_reset,
    operation_bus_ns,
    row_address,
    split_row,
)
from repro.flash.timing import MLC

GEOM = Geometry(
    channels=2,
    chips_per_channel=1,
    dies_per_chip=1,
    planes_per_die=2,
    blocks_per_plane=16,
    pages_per_block=32,
    page_size=8192,
    sector_size=4096,
)
ADDR = PhysicalAddress(0, 0, 0, 1, 5, 17)


class TestRowAddress:
    def test_roundtrip(self):
        row = row_address(GEOM, ADDR)
        assert split_row(GEOM, row) == (1, 5, 17)

    def test_page_zero_block_zero(self):
        addr = PhysicalAddress(0, 0, 0, 0, 0, 0)
        assert row_address(GEOM, addr) == 0

    def test_page_is_low_bits(self):
        base = PhysicalAddress(0, 0, 0, 0, 3, 0)
        assert row_address(GEOM, base._replace(page=5)) == row_address(GEOM, base) + 5

    @given(
        plane=st.integers(0, 1),
        block=st.integers(0, 15),
        page=st.integers(0, 31),
    )
    def test_roundtrip_property(self, plane, block, page):
        addr = PhysicalAddress(0, 0, 0, plane, block, page)
        assert split_row(GEOM, row_address(GEOM, addr)) == (plane, block, page)


class TestReadEncoding:
    def test_cycle_structure(self):
        op = encode_read(GEOM, MLC, ADDR)
        kinds = [c.kind for c in op.cycles]
        assert kinds == [
            CycleKind.CMD,
            CycleKind.ADDR, CycleKind.ADDR, CycleKind.ADDR, CycleKind.ADDR, CycleKind.ADDR,
            CycleKind.CMD,
            CycleKind.DATA_OUT,
        ]
        assert op.cycles[0].value == Opcode.READ_1ST
        assert op.cycles[6].value == Opcode.READ_2ND

    def test_busy_before_data_out(self):
        op = encode_read(GEOM, MLC, ADDR)
        assert op.busy_after == 6  # after READ_2ND, before DATA_OUT
        assert op.busy_ns == MLC.read_ns

    def test_default_data_length_is_page(self):
        op = encode_read(GEOM, MLC, ADDR)
        assert op.cycles[-1].nbytes == GEOM.page_size

    def test_partial_read_length(self):
        op = encode_read(GEOM, MLC, ADDR, nbytes=512)
        assert op.cycles[-1].nbytes == 512

    def test_address_bytes_encode_row(self):
        op = encode_read(GEOM, MLC, ADDR)
        row = row_address(GEOM, ADDR)
        addr_bytes = [c.value for c in op.cycles if c.kind is CycleKind.ADDR]
        assert addr_bytes[0] == 0 and addr_bytes[1] == 0  # column = 0
        recovered = addr_bytes[2] | (addr_bytes[3] << 8) | (addr_bytes[4] << 16)
        assert recovered == row


class TestProgramEncoding:
    def test_cycle_structure(self):
        op = encode_program(GEOM, MLC, ADDR)
        kinds = [c.kind for c in op.cycles]
        assert kinds[0] == CycleKind.CMD
        assert kinds[-2] == CycleKind.DATA_IN
        assert kinds[-1] == CycleKind.CMD
        assert op.cycles[0].value == Opcode.PROGRAM_1ST
        assert op.cycles[-1].value == Opcode.PROGRAM_2ND

    def test_busy_after_launch(self):
        op = encode_program(GEOM, MLC, ADDR)
        assert op.busy_after == len(op.cycles) - 1
        assert op.busy_ns == MLC.program_ns


class TestEraseEncoding:
    def test_cycle_structure(self):
        op = encode_erase(GEOM, MLC, ADDR)
        kinds = [c.kind for c in op.cycles]
        # 60h + 3 row cycles + D0h: erase has no column address.
        assert kinds == [CycleKind.CMD] + [CycleKind.ADDR] * 3 + [CycleKind.CMD]
        assert op.busy_ns == MLC.erase_ns

    def test_row_bytes(self):
        op = encode_erase(GEOM, MLC, ADDR)
        row = row_address(GEOM, ADDR)
        addr_bytes = [c.value for c in op.cycles if c.kind is CycleKind.ADDR]
        assert addr_bytes[0] | (addr_bytes[1] << 8) | (addr_bytes[2] << 16) == row


class TestMiscOps:
    def test_reset(self):
        op = encode_reset()
        assert op.cycles[0].value == Opcode.RESET
        assert len(op.cycles) == 1

    def test_read_status_returns_one_byte(self):
        op = encode_read_status()
        assert op.cycles[-1].kind is CycleKind.DATA_OUT
        assert op.cycles[-1].nbytes == 1

    def test_read_id_shape(self):
        op = encode_read_id()
        assert [c.kind for c in op.cycles] == [
            CycleKind.CMD, CycleKind.ADDR, CycleKind.DATA_OUT,
        ]
        assert op.cycles[-1].nbytes == 5


class TestBusTiming:
    def test_program_bus_time_dominated_by_data(self):
        op = encode_program(GEOM, MLC, ADDR)
        total = operation_bus_ns(op, MLC)
        data_time = MLC.transfer_ns(GEOM.page_size)
        overhead = 7 * MLC.cycle_ns  # 2 cmd + 5 addr
        assert total == data_time + overhead

    def test_erase_bus_time_is_cycles_only(self):
        op = encode_erase(GEOM, MLC, ADDR)
        assert operation_bus_ns(op, MLC) == 5 * MLC.cycle_ns

    def test_transfer_scales_with_bytes(self):
        assert MLC.transfer_ns(2000) == 2 * MLC.transfer_ns(1000)
