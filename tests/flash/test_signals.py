"""Signal emission: traces, busy windows, and sampled waveforms."""

import numpy as np
import pytest

from repro.flash.geometry import Geometry, PhysicalAddress
from repro.flash.onfi import encode_erase, encode_program, encode_read
from repro.flash.signals import SignalEmitter, SignalTrace, render_samples
from repro.flash.timing import MLC

GEOM = Geometry(
    channels=1, chips_per_channel=1, dies_per_chip=1, planes_per_die=1,
    blocks_per_plane=8, pages_per_block=16, page_size=4096, sector_size=4096,
)
ADDR = PhysicalAddress(0, 0, 0, 0, 2, 3)


@pytest.fixture
def emitter():
    return SignalEmitter(MLC)


class TestEmission:
    def test_program_emits_segments_and_busy(self, emitter):
        end = emitter.emit(encode_program(GEOM, MLC, ADDR), 0)
        trace = emitter.trace
        assert len(trace.segments) == 8  # cmd + 5 addr + data + cmd
        assert len(trace.busy) == 1
        assert trace.busy[0].t1 - trace.busy[0].t0 == MLC.program_ns
        assert end == trace.t_end

    def test_read_busy_precedes_data_out(self, emitter):
        emitter.emit(encode_read(GEOM, MLC, ADDR), 0)
        trace = emitter.trace
        data_seg = [s for s in trace.segments if s.reading][0]
        busy = trace.busy[0]
        assert busy.t1 <= data_seg.t0
        assert busy.t1 - busy.t0 == MLC.read_ns

    def test_erase_busy_duration(self, emitter):
        emitter.emit(encode_erase(GEOM, MLC, ADDR), 0)
        busy = emitter.trace.busy[0]
        assert busy.t1 - busy.t0 == MLC.erase_ns

    def test_sequential_ops_do_not_overlap(self, emitter):
        end1 = emitter.emit(encode_program(GEOM, MLC, ADDR), 0)
        emitter.emit(
            encode_program(GEOM, MLC, ADDR._replace(page=4)), end1
        )
        times = [(s.t0, s.t1) for s in emitter.trace.segments]
        for (a0, a1), (b0, b1) in zip(times, times[1:]):
            assert b0 >= a1 or b0 >= a0  # monotone non-overlapping starts

    def test_segment_strobe_counts(self, emitter):
        emitter.emit(encode_program(GEOM, MLC, ADDR), 0)
        data_seg = [s for s in emitter.trace.segments if s.dq == -1][0]
        assert data_seg.strobes == GEOM.page_size

    def test_window_clips(self, emitter):
        end = emitter.emit(encode_program(GEOM, MLC, ADDR), 0)
        sub = emitter.trace.window(0, 100)
        assert all(s.t0 < 100 for s in sub.segments)
        assert sub.t_end <= min(end, 100)


class TestRenderSamples:
    def test_arrays_share_length(self, emitter):
        emitter.emit(encode_program(GEOM, MLC, ADDR), 0)
        samples = render_samples(emitter.trace, sample_period_ns=10)
        lengths = {len(v) for v in samples.values()}
        assert len(lengths) == 1

    def test_cle_high_during_commands(self, emitter):
        emitter.emit(encode_program(GEOM, MLC, ADDR), 0)
        samples = render_samples(emitter.trace, sample_period_ns=5)
        # First segment is the 80h command cycle (25 ns) => CLE high early.
        assert samples["cle"][0] == 1
        assert samples["dq"][0] == 0x80

    def test_rb_low_during_busy(self, emitter):
        emitter.emit(encode_program(GEOM, MLC, ADDR), 0)
        trace = emitter.trace
        busy = trace.busy[0]
        samples = render_samples(trace, sample_period_ns=1000)
        t = samples["t"]
        inside = (t >= busy.t0) & (t < busy.t1)
        assert np.all(samples["rb"][inside] == 0)
        before = t < busy.t0
        assert np.all(samples["rb"][before] == 1)

    def test_idle_bus_reads_ff(self, emitter):
        end = emitter.emit(encode_erase(GEOM, MLC, ADDR), 1000)
        samples = render_samples(emitter.trace, sample_period_ns=50, t1=end)
        assert np.all(samples["dq"][samples["t"] < 1000] == 0xFF)

    def test_we_toggles_during_data_in(self, emitter):
        emitter.emit(encode_program(GEOM, MLC, ADDR), 0)
        data_seg = [s for s in emitter.trace.segments if s.strobes > 1][0]
        samples = render_samples(
            emitter.trace, sample_period_ns=data_seg.strobe_period_ns / 4,
            t0=int(data_seg.t0), t1=int(data_seg.t1),
        )
        transitions = np.count_nonzero(np.diff(samples["we"]))
        # Adequately sampled: roughly two transitions per strobe.
        assert transitions > data_seg.strobes

    def test_undersampling_loses_strobes(self, emitter):
        emitter.emit(encode_program(GEOM, MLC, ADDR), 0)
        data_seg = [s for s in emitter.trace.segments if s.strobes > 1][0]
        samples = render_samples(
            emitter.trace, sample_period_ns=data_seg.strobe_period_ns * 8,
            t0=int(data_seg.t0), t1=int(data_seg.t1),
        )
        transitions = np.count_nonzero(np.diff(samples["we"]))
        assert transitions < data_seg.strobes / 2

    def test_max_samples_caps_buffer(self, emitter):
        emitter.emit(encode_program(GEOM, MLC, ADDR), 0)
        samples = render_samples(emitter.trace, sample_period_ns=1, max_samples=100)
        assert len(samples["t"]) == 100

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            render_samples(SignalTrace(), sample_period_ns=0)
