"""Property test: the vectorized NAND array is observation-equivalent to
per-page semantics.

``NandArray`` keeps all flash state in flat numpy arrays and maintains its
wear statistics incrementally.  The reference model below stores one
Python record per page and recomputes every statistic from scratch — the
pre-refactor per-page semantics.  On random operation sequences both must
agree on everything observable: read/read_oob round-trips, violations,
block stats, wear summaries, counters, and clone independence.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash.geometry import Geometry
from repro.flash.nand import NO_LPN, FlashViolation, NandArray, PageState

GEOM = Geometry(
    channels=1,
    chips_per_channel=1,
    dies_per_chip=1,
    planes_per_die=2,
    blocks_per_plane=3,
    pages_per_block=4,
    page_size=8192,
    sector_size=4096,  # 2 sectors/page -> multi-slot OOB records
)
BLOCKS = GEOM.total_blocks
PAGES = GEOM.total_pages
OOB_SLOTS = GEOM.sectors_per_page


class RefNand:
    """Per-page reference: one dict entry per page, full-scan statistics."""

    def __init__(self) -> None:
        self.pages = {
            ppn: {"state": "free", "lpn": int(NO_LPN), "seq": -1, "oob": None}
            for ppn in range(PAGES)
        }
        self.erase_count = {block: 0 for block in range(BLOCKS)}
        self.write_ptr = {block: 0 for block in range(BLOCKS)}
        self.reads = self.programs = self.erases = 0
        self._seq = 0

    def program(self, ppn, lpn, oob):
        if not 0 <= ppn < PAGES:
            raise FlashViolation("out of range")
        page = self.pages[ppn]
        if page["state"] != "free":
            raise FlashViolation("already programmed")
        block, offset = divmod(ppn, GEOM.pages_per_block)
        if offset != self.write_ptr[block]:
            raise FlashViolation("sequential programming violated")
        if oob is not None and len(oob) > OOB_SLOTS:
            raise FlashViolation("OOB record too large")
        page.update(state="programmed", lpn=lpn, seq=self._seq,
                    oob=None if oob is None else tuple(oob))
        self._seq += 1
        self.write_ptr[block] = offset + 1
        self.programs += 1

    def erase(self, block):
        start = block * GEOM.pages_per_block
        for ppn in range(start, start + GEOM.pages_per_block):
            self.pages[ppn] = {"state": "free", "lpn": int(NO_LPN),
                               "seq": -1, "oob": None}
        self.erase_count[block] += 1
        self.write_ptr[block] = 0
        self.erases += 1

    def read(self, ppn):
        self.reads += 1
        page = self.pages[ppn]
        if page["state"] == "free":
            return int(NO_LPN), None
        return page["lpn"], None

    def read_oob(self, ppn):
        return self.pages[ppn]["oob"]

    def block_stats(self, block):
        start = block * GEOM.pages_per_block
        programmed = sum(
            1 for ppn in range(start, start + GEOM.pages_per_block)
            if self.pages[ppn]["state"] == "programmed"
        )
        return (self.erase_count[block], programmed, self.write_ptr[block])

    def lpns_in_block(self, block):
        start = block * GEOM.pages_per_block
        return [self.pages[ppn]["lpn"]
                for ppn in range(start, start + GEOM.pages_per_block)]

    def wear_summary(self):
        counts = np.array(list(self.erase_count.values()), dtype=np.float64)
        return {"min": float(counts.min()), "max": float(counts.max()),
                "mean": float(counts.mean()), "std": float(counts.std()),
                "total": float(counts.sum())}


def _ops_strategy():
    program = st.tuples(
        st.just("program"),
        st.integers(0, BLOCKS - 1),
        st.integers(0, 500),
        st.one_of(st.none(),
                  st.lists(st.integers(0, 500), min_size=1,
                           max_size=OOB_SLOTS)),
    )
    bad_program = st.tuples(st.just("bad_program"),
                            st.integers(0, PAGES - 1),
                            st.integers(0, 500))
    erase = st.tuples(st.just("erase"), st.integers(0, BLOCKS - 1))
    return st.lists(st.one_of(program, program, erase, bad_program),
                    min_size=1, max_size=60)


def _apply(op, nand: NandArray, ref: RefNand) -> None:
    if op[0] == "program":
        # Program the block's next sequential page (the legal case).
        _, block, lpn, oob = op
        ptr = int(nand.block_write_ptr[block])
        if ptr >= GEOM.pages_per_block:
            return
        ppn = block * GEOM.pages_per_block + ptr
        nand.program(ppn, lpn=lpn, oob=None if oob is None else tuple(oob))
        ref.program(ppn, lpn, oob)
    elif op[0] == "bad_program":
        # An arbitrary target: both sides must agree on accept/reject.
        _, ppn, lpn = op
        outcomes = []
        for model in (nand, ref):
            try:
                if model is nand:
                    nand.program(ppn, lpn=lpn)
                else:
                    ref.program(ppn, lpn, None)
                outcomes.append("ok")
            except FlashViolation:
                outcomes.append("violation")
        assert outcomes[0] == outcomes[1]
    else:
        _, block = op
        nand.erase(block)
        ref.erase(block)


def _assert_equivalent(nand: NandArray, ref: RefNand) -> None:
    for ppn in range(PAGES):
        assert nand.is_free(ppn) == (ref.pages[ppn]["state"] == "free")
        assert nand.read(ppn) == ref.read(ppn)
        assert nand.read_oob(ppn) == ref.read_oob(ppn)
        assert int(nand.page_seq[ppn]) == ref.pages[ppn]["seq"]
    for block in range(BLOCKS):
        stats = nand.block_stats(block)
        assert (stats.erase_count, stats.programmed_pages,
                stats.write_pointer) == ref.block_stats(block)
        assert nand.lpns_in_block(block).tolist() == ref.lpns_in_block(block)
    fast = nand.wear_summary()
    slow = ref.wear_summary()
    for key in slow:
        assert abs(fast[key] - slow[key]) < 1e-9, (key, fast, slow)
    assert nand.counters.reads == ref.reads
    assert nand.counters.programs == ref.programs
    assert nand.counters.erases == ref.erases


@settings(max_examples=120, deadline=None)
@given(ops=_ops_strategy())
def test_vectorized_nand_matches_per_page_reference(ops):
    nand = NandArray(GEOM)
    ref = RefNand()
    for op in ops:
        _apply(op, nand, ref)
    _assert_equivalent(nand, ref)


@settings(max_examples=40, deadline=None)
@given(ops=_ops_strategy(), extra=_ops_strategy())
def test_clone_is_independent_and_equivalent(ops, extra):
    nand = NandArray(GEOM)
    ref = RefNand()
    for op in ops:
        _apply(op, nand, ref)
    twin = nand.clone()
    # Mutating the original must not leak into the clone...
    for op in extra:
        _apply(op, nand, ref)
    # ...so the clone still matches a reference built from the prefix.
    ref_prefix = RefNand()
    replay = NandArray(GEOM)
    for op in ops:
        _apply(op, replay, ref_prefix)
    _assert_equivalent(twin, ref_prefix)
    _assert_equivalent(nand, ref)


class TestIncrementalStatsRegression:
    """``block_stats``/``wear_summary`` used to rescan arrays per call;
    they are now served from incrementally-maintained aggregates.  Pin
    that the aggregates never drift from a from-scratch rebuild."""

    def test_wear_summary_matches_reindex_after_churn(self):
        nand = NandArray(GEOM)
        rng = np.random.default_rng(17)
        for _ in range(300):
            nand.erase(int(rng.integers(BLOCKS)))
        incremental = nand.wear_summary()
        nand.reindex_wear()
        assert nand.wear_summary() == incremental

    def test_staged_erase_counts_need_reindex(self):
        nand = NandArray(GEOM)
        nand.block_erase_count[:] = [5, 1, 9, 0, 3, 2][:BLOCKS]
        nand.reindex_wear()
        summary = nand.wear_summary()
        counts = nand.block_erase_count.astype(np.float64)
        assert summary["min"] == counts.min()
        assert summary["max"] == counts.max()
        assert summary["total"] == counts.sum()
        assert abs(summary["std"] - counts.std()) < 1e-9

    def test_block_stats_constant_time_invariant(self):
        nand = NandArray(GEOM)
        nand.program(0, lpn=1)
        nand.program(1, lpn=2)
        stats = nand.block_stats(0)
        # Sequential programming: programmed count == write pointer.
        assert stats.programmed_pages == stats.write_pointer == 2
        programmed = int(
            np.count_nonzero(nand.page_state[:GEOM.pages_per_block]
                             == PageState.PROGRAMMED))
        assert stats.programmed_pages == programmed
