"""Reliability model and failure injection."""

import pytest

from repro.flash.errors import (
    MLC_RELIABILITY,
    PSLC_RELIABILITY,
    TLC_RELIABILITY,
    FailureInjector,
    ReliabilityModel,
)


class TestRber:
    def test_rber_grows_with_wear(self):
        model = MLC_RELIABILITY
        assert model.rber(3000) > model.rber(100) > model.rber(0)

    def test_rber_grows_with_retention(self):
        model = MLC_RELIABILITY
        assert model.rber(0, retention_days=30) > model.rber(0, retention_days=0)

    def test_fresh_block_correctable(self):
        assert MLC_RELIABILITY.is_correctable(0)

    def test_extreme_wear_plus_retention_uncorrectable(self):
        model = ReliabilityModel(base_rber=1e-5, rated_cycles=100)
        assert not model.is_correctable(5000, retention_days=365)

    def test_pslc_more_robust_than_tlc(self):
        cycles = 1000
        assert PSLC_RELIABILITY.rber(cycles) < TLC_RELIABILITY.rber(cycles)

    def test_refresh_deadline_shrinks_with_wear(self):
        model = MLC_RELIABILITY
        assert model.refresh_deadline_days(2000) < model.refresh_deadline_days(0)

    def test_refresh_deadline_zero_when_already_over(self):
        model = ReliabilityModel(base_rber=1.0)
        assert model.refresh_deadline_days(0) == 0.0


class TestFailureInjector:
    def test_no_failures_by_default(self):
        injector = FailureInjector()
        assert not any(injector.program_fails(p) for p in range(100))
        assert not any(injector.erase_fails(b) for b in range(100))

    def test_forced_program_failure_fires_once(self):
        injector = FailureInjector()
        injector.force_program_failure(5)
        assert injector.program_fails(5)
        assert not injector.program_fails(5)
        assert injector.program_failures == 1

    def test_forced_erase_failure(self):
        injector = FailureInjector()
        injector.force_erase_failure(3)
        assert injector.erase_fails(3)
        assert injector.erase_failures == 1

    def test_probabilistic_failures_deterministic_by_seed(self):
        a = FailureInjector(seed=7, program_fail_prob=0.5)
        b = FailureInjector(seed=7, program_fail_prob=0.5)
        outcomes_a = [a.program_fails(i) for i in range(50)]
        outcomes_b = [b.program_fails(i) for i in range(50)]
        assert outcomes_a == outcomes_b
        assert any(outcomes_a) and not all(outcomes_a)

    def test_probability_one_always_fails(self):
        injector = FailureInjector(program_fail_prob=1.0, erase_fail_prob=1.0)
        assert injector.program_fails(0)
        assert injector.erase_fails(0)
