"""Geometry addressing: packing, unpacking, and derived sizes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.flash.geometry import Geometry, PhysicalAddress

SMALL = Geometry(
    channels=2,
    chips_per_channel=2,
    dies_per_chip=2,
    planes_per_die=2,
    blocks_per_plane=4,
    pages_per_block=8,
    page_size=8192,
    sector_size=4096,
)


class TestDerivedSizes:
    def test_dies_total(self):
        assert SMALL.dies_total == 2 * 2 * 2

    def test_total_blocks(self):
        assert SMALL.total_blocks == SMALL.planes_total * 4

    def test_total_pages(self):
        assert SMALL.total_pages == SMALL.total_blocks * 8

    def test_capacity_bytes(self):
        assert SMALL.capacity_bytes == SMALL.total_pages * 8192

    def test_sectors_per_page(self):
        assert SMALL.sectors_per_page == 2

    def test_block_bytes(self):
        assert SMALL.block_bytes == 8 * 8192


class TestValidation:
    @pytest.mark.parametrize("field", [
        "channels", "chips_per_channel", "dies_per_chip", "planes_per_die",
        "blocks_per_plane", "pages_per_block", "page_size",
    ])
    def test_rejects_nonpositive(self, field):
        with pytest.raises(ValueError):
            Geometry(**{field: 0})

    def test_rejects_page_not_multiple_of_sector(self):
        with pytest.raises(ValueError):
            Geometry(page_size=10000, sector_size=4096)

    def test_rejects_negative_oob(self):
        with pytest.raises(ValueError):
            Geometry(oob_size=-1)


class TestAddressPacking:
    def test_ppn_zero(self):
        assert SMALL.ppn(PhysicalAddress(0, 0, 0, 0, 0, 0)) == 0

    def test_ppn_consecutive_pages(self):
        a0 = SMALL.ppn(PhysicalAddress(0, 0, 0, 0, 0, 0))
        a1 = SMALL.ppn(PhysicalAddress(0, 0, 0, 0, 0, 1))
        assert a1 == a0 + 1

    def test_ppn_block_stride(self):
        a = SMALL.ppn(PhysicalAddress(0, 0, 0, 0, 1, 0))
        assert a == SMALL.pages_per_block

    def test_last_ppn(self):
        addr = PhysicalAddress(1, 1, 1, 1, 3, 7)
        assert SMALL.ppn(addr) == SMALL.total_pages - 1

    def test_roundtrip_examples(self):
        for addr in [
            PhysicalAddress(0, 0, 0, 0, 0, 0),
            PhysicalAddress(1, 0, 1, 0, 2, 5),
            PhysicalAddress(1, 1, 1, 1, 3, 7),
        ]:
            assert SMALL.address(SMALL.ppn(addr)) == addr

    def test_out_of_range_field_rejected(self):
        with pytest.raises(ValueError):
            SMALL.ppn(PhysicalAddress(2, 0, 0, 0, 0, 0))
        with pytest.raises(ValueError):
            SMALL.ppn(PhysicalAddress(0, 0, 0, 0, 0, 8))

    def test_ppn_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            SMALL.address(SMALL.total_pages)
        with pytest.raises(ValueError):
            SMALL.address(-1)

    def test_block_index_roundtrip(self):
        for index in range(SMALL.total_blocks):
            addr = SMALL.block_address(index)
            assert SMALL.block_index(addr) == index
            assert addr.page == 0

    def test_block_address_out_of_range(self):
        with pytest.raises(ValueError):
            SMALL.block_address(SMALL.total_blocks)


class TestLocalityHelpers:
    def test_die_of_block_matches_address(self):
        for index in range(SMALL.total_blocks):
            addr = SMALL.block_address(index)
            assert SMALL.die_of_block(index) == SMALL.die_index(addr)

    def test_channel_of_block_matches_address(self):
        for index in range(SMALL.total_blocks):
            addr = SMALL.block_address(index)
            assert SMALL.channel_of_block(index) == addr.channel

    def test_die_of_ppn(self):
        ppn = SMALL.ppn(PhysicalAddress(1, 0, 1, 1, 2, 3))
        assert SMALL.die_of_ppn(ppn) == SMALL.die_index(
            PhysicalAddress(1, 0, 1, 1, 2, 3)
        )

    def test_channel_of_ppn(self):
        ppn = SMALL.ppn(PhysicalAddress(1, 1, 0, 0, 0, 0))
        assert SMALL.channel_of_ppn(ppn) == 1

    def test_iter_plane_coords_count(self):
        coords = list(SMALL.iter_plane_coords())
        assert len(coords) == SMALL.planes_total
        assert len(set(coords)) == SMALL.planes_total


@given(ppn=st.integers(min_value=0, max_value=SMALL.total_pages - 1))
def test_ppn_roundtrip_property(ppn):
    assert SMALL.ppn(SMALL.address(ppn)) == ppn


@given(
    channels=st.integers(1, 4),
    chips=st.integers(1, 2),
    dies=st.integers(1, 2),
    planes=st.integers(1, 2),
    blocks=st.integers(1, 8),
    pages=st.integers(1, 16),
)
def test_sizes_consistent_property(channels, chips, dies, planes, blocks, pages):
    g = Geometry(
        channels=channels,
        chips_per_channel=chips,
        dies_per_chip=dies,
        planes_per_die=planes,
        blocks_per_plane=blocks,
        pages_per_block=pages,
        page_size=4096,
        sector_size=4096,
    )
    assert g.total_pages == g.total_blocks * pages
    assert g.address(g.total_pages - 1) is not None
    # Every block index maps to a distinct address.
    addrs = {g.block_address(i) for i in range(g.total_blocks)}
    assert len(addrs) == g.total_blocks
