"""Fleet/tenant spec validation and seed-derivation contracts."""

import pytest

from repro.fleet.spec import (
    TENANT_MIXES,
    FleetSpec,
    TenantSpec,
    default_tenants,
    derive_seed,
    noisy_tenants,
    steady_tenants,
)


def tiny_fleet(**overrides) -> FleetSpec:
    defaults = dict(tenants=default_tenants(io_count=20), devices=8,
                    preset="tiny", seed=7)
    defaults.update(overrides)
    return FleetSpec(**defaults)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, 3, "oltp") == derive_seed(42, 3, "oltp")

    def test_pinned_value(self):
        # Cross-platform / cross-process stability: the derivation is
        # SHA-256 over a fixed text encoding, so this value never moves.
        assert derive_seed(42, 0) == 5215134277402517157

    def test_distinct_parts_distinct_seeds(self):
        seeds = {
            derive_seed(42, 0),
            derive_seed(42, 1),
            derive_seed(43, 0),
            derive_seed(42, 0, "oltp"),
            derive_seed(42, 0, "backup"),
        }
        assert len(seeds) == 5

    def test_fits_numpy_seed_range(self):
        assert 0 <= derive_seed(2**64, "x") < 2**63


class TestTenantSpecValidation:
    def test_defaults_valid(self):
        TenantSpec(name="t", rate_iops=100.0)

    @pytest.mark.parametrize("kwargs", [
        dict(name=""),
        dict(rw="sideways"),
        dict(arrival="whenever"),
        dict(rate_iops=0.0),
        dict(rate_iops=-5.0),
        dict(io_count=0),
        dict(share=0.0),
        dict(slo_p99_us=-1.0),
        dict(slo_p999_us=-1.0),
    ])
    def test_rejects(self, kwargs):
        base = dict(name="t", rate_iops=100.0)
        base.update(kwargs)
        with pytest.raises(ValueError):
            TenantSpec(**base)


class TestFleetSpecValidation:
    def test_valid(self):
        tiny_fleet()

    def test_needs_tenants(self):
        with pytest.raises(ValueError, match="at least one tenant"):
            tiny_fleet(tenants=())

    def test_rejects_duplicate_tenant_names(self):
        dup = (TenantSpec(name="t", rate_iops=10.0),
               TenantSpec(name="t", rate_iops=20.0))
        with pytest.raises(ValueError, match="duplicate"):
            tiny_fleet(tenants=dup)

    def test_rejects_zero_devices(self):
        with pytest.raises(ValueError, match="devices"):
            tiny_fleet(devices=0)

    def test_rejects_unknown_preset(self):
        with pytest.raises(ValueError, match="unknown preset"):
            tiny_fleet(preset="galactic")

    def test_device_config_applies_allocation(self):
        spec = tiny_fleet(allocation="hotcold")
        assert spec.device_config().allocation_scheme == "hotcold"


class TestDeviceJobs:
    def test_regions_partition_the_device(self):
        spec = tiny_fleet()
        jobs = spec.device_jobs(0, num_sectors=4096)
        start = 0
        for job in jobs[:-1]:
            assert job.region.start == start
            start = job.region.start + job.region.length
        # last tenant absorbs rounding slack out to the device end
        assert jobs[-1].region.start + jobs[-1].region.length == 4096

    def test_share_weights_region_sizes(self):
        tenants = (TenantSpec(name="big", rate_iops=10.0, share=3.0),
                   TenantSpec(name="small", rate_iops=10.0, share=1.0))
        spec = tiny_fleet(tenants=tenants)
        big, small = spec.device_jobs(0, num_sectors=4000)
        assert big.region.length == 3000
        assert small.region.length == 1000

    def test_jobs_are_open_loop_with_tenant_shape(self):
        spec = tiny_fleet()
        jobs = spec.device_jobs(3, num_sectors=4096)
        for job, tenant in zip(jobs, spec.tenants):
            assert job.submission == "open"
            assert job.name == tenant.name
            assert job.rate_iops == tenant.rate_iops
            assert job.arrival == tenant.arrival
            assert job.seed == spec.tenant_seed(3, tenant.name)

    def test_seeds_independent_of_everything_but_identity(self):
        a = tiny_fleet(devices=8)
        b = tiny_fleet(devices=800)  # only fleet size differs
        assert a.device_seed(5) == b.device_seed(5)
        assert a.tenant_seed(5, "oltp") == b.tenant_seed(5, "oltp")
        assert a.device_seed(5) != a.device_seed(6)


class TestMixes:
    @pytest.mark.parametrize("name", sorted(TENANT_MIXES))
    def test_mixes_construct_valid_fleets(self, name):
        spec = FleetSpec(tenants=TENANT_MIXES[name](), devices=4)
        assert len(spec.tenants) >= 2

    def test_rate_scale_scales_rates(self):
        base = default_tenants()
        doubled = default_tenants(rate_scale=2.0)
        for lo, hi in zip(base, doubled):
            assert hi.rate_iops == pytest.approx(2 * lo.rate_iops)

    def test_noisy_is_default_with_louder_backup(self):
        quiet = {t.name: t for t in default_tenants()}
        loud = {t.name: t for t in noisy_tenants()}
        assert quiet["oltp"] == loud["oltp"]
        assert loud["backup"].rate_iops > quiet["backup"].rate_iops
        assert loud["backup"].burst_multiplier > quiet["backup"].burst_multiplier

    def test_steady_has_no_bursty_tenant(self):
        assert all(t.arrival == "poisson" for t in steady_tenants())
