"""Shard scheduler: planning, determinism across shard plans, fail-fast."""

import pickle

import pytest

from repro.exp import CellError, Runner
from repro.fleet import shard as shard_mod
from repro.fleet.shard import (
    DEVICES_PER_SHARD,
    FleetDeviceError,
    FleetShardCell,
    fleet_cells,
    plan_shards,
    run_fleet_devices,
    run_fleet_shard_cell,
    simulate_device,
)
from repro.fleet.spec import FleetSpec, TenantSpec, default_tenants


def small_fleet(devices: int = 8, **overrides) -> FleetSpec:
    defaults = dict(tenants=default_tenants(io_count=20), devices=devices,
                    preset="tiny", seed=11)
    defaults.update(overrides)
    return FleetSpec(**defaults)


class TestPlanShards:
    def test_default_targets_devices_per_shard(self):
        bounds = plan_shards(100)
        assert len(bounds) == -(-100 // DEVICES_PER_SHARD)

    def test_covers_range_contiguously(self):
        bounds = plan_shards(100, shards=7)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == 100
        for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
            assert hi == lo

    def test_balanced_within_one(self):
        sizes = {hi - lo for lo, hi in plan_shards(100, shards=7)}
        assert max(sizes) - min(sizes) <= 1

    def test_clamps_shards_to_devices(self):
        assert len(plan_shards(3, shards=16)) == 3

    @pytest.mark.parametrize("devices,shards", [(0, None), (4, 0), (4, -1)])
    def test_rejects_bad_counts(self, devices, shards):
        with pytest.raises(ValueError):
            plan_shards(devices, shards)


class TestShardCell:
    def test_rejects_bad_bounds(self):
        spec = small_fleet(devices=4)
        for lo, hi in [(-1, 2), (2, 2), (3, 1), (0, 5)]:
            with pytest.raises(ValueError, match="bad shard bounds"):
                FleetShardCell(spec, lo, hi)

    def test_cells_carry_fleet_seed_and_label(self):
        spec = small_fleet(devices=8)
        cells = fleet_cells(spec, shards=2)
        assert [c.config.lo for c in cells] == [0, 4]
        assert all(c.seed == spec.seed for c in cells)
        assert cells[0].label == "fleet:tiny:[0,4)"

    def test_shard_plan_ignores_worker_count(self):
        # Cache keys are built from cell configs; the plan must be a pure
        # function of the fleet, never of --jobs.
        spec = small_fleet(devices=70)
        keys = [c.key("s") for c in fleet_cells(spec)]
        assert keys == [c.key("s") for c in fleet_cells(spec)]
        assert len(keys) == -(-70 // DEVICES_PER_SHARD)


class TestSimulateDevice:
    def test_pure_function_of_spec_and_index(self):
        spec = small_fleet()
        a = simulate_device(spec, 3)
        b = simulate_device(spec, 3)
        assert pickle.dumps(a) == pickle.dumps(b)

    def test_distinct_devices_distinct_outcomes(self):
        spec = small_fleet()
        a = simulate_device(spec, 0)
        b = simulate_device(spec, 1)
        assert a.seed != b.seed
        assert pickle.dumps(a.tenants) != pickle.dumps(b.tenants)

    def test_transport_payload_is_sketch_sized(self):
        # The whole point: a device's payload is O(centroids), not O(ops).
        spec = small_fleet(tenants=(
            TenantSpec(name="hot", rate_iops=200.0, io_count=2000),))
        result = simulate_device(spec, 0)
        assert result.tenants[0].requests == 2000
        assert len(pickle.dumps(result)) < 8192

    def test_counters_accumulate(self):
        result = simulate_device(small_fleet(), 0)
        assert result.host_sectors_written > 0
        assert result.elapsed_ns > 0
        names = [t.tenant for t in result.tenants]
        assert names == ["oltp", "analytics", "backup"]


class TestShardInvariance:
    """Same fleet seed => byte-identical per-device results, any shard plan."""

    def test_shards_1_vs_8_byte_identical(self):
        spec = small_fleet(devices=8)
        serial = run_fleet_devices(spec, shards=1)
        sharded = run_fleet_devices(spec, shards=8)
        assert pickle.dumps(serial) == pickle.dumps(sharded)

    def test_uneven_shards_byte_identical(self):
        spec = small_fleet(devices=7)
        assert pickle.dumps(run_fleet_devices(spec, shards=1)) == \
            pickle.dumps(run_fleet_devices(spec, shards=3))

    def test_results_in_device_index_order(self):
        spec = small_fleet(devices=6)
        results = run_fleet_devices(spec, shards=3)
        assert [r.index for r in results] == list(range(6))

    def test_worker_count_invisible_in_results(self):
        # Compare per device: list-level pickle bytes can differ by memo
        # structure (string interning after worker transport) even when
        # every device's content is identical.
        spec = small_fleet(devices=6)
        one = run_fleet_devices(spec, Runner(jobs=1, cache=None), shards=3)
        two = run_fleet_devices(spec, Runner(jobs=2, cache=None), shards=3)
        assert [pickle.dumps(d) for d in one] == [pickle.dumps(d) for d in two]


class TestFailFast:
    def test_error_names_exact_device(self, monkeypatch):
        spec = small_fleet(devices=8)
        real = simulate_device

        def failing(spec_, index):
            if index >= 5:
                raise RuntimeError("flash caught fire")
            return real(spec_, index)

        monkeypatch.setattr(shard_mod, "simulate_device", failing)
        with pytest.raises(FleetDeviceError) as excinfo:
            run_fleet_shard_cell(FleetShardCell(spec, 4, 8))
        assert excinfo.value.device_index == 5
        assert "device #5" in str(excinfo.value)
        assert "flash caught fire" in str(excinfo.value)

    def test_runner_surfaces_lowest_failing_device(self, monkeypatch):
        # Failures in devices 5 and 6 across different shards: the runner
        # fails fast on the lowest-indexed failing cell, so the surfaced
        # error names device 5.
        spec = small_fleet(devices=8)
        real = simulate_device

        def failing(spec_, index):
            if index in (5, 6):
                raise RuntimeError("boom")
            return real(spec_, index)

        monkeypatch.setattr(shard_mod, "simulate_device", failing)
        with pytest.raises(CellError) as excinfo:
            run_fleet_devices(spec, Runner(jobs=1, cache=None), shards=4)
        cause = excinfo.value.__cause__
        assert isinstance(cause, FleetDeviceError)
        assert cause.device_index == 5
        assert "device #5" in str(excinfo.value)
