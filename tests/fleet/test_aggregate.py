"""Fleet aggregation: merged verdicts, exact WAF, report invariance."""

import pickle

import numpy as np
import pytest

from repro.fleet import run_fleet
from repro.fleet.aggregate import (
    REPORT_QUANTILES,
    FleetReport,
    TenantVerdict,
    aggregate_fleet,
)
from repro.fleet.shard import DeviceResult, TenantSlice, run_fleet_devices
from repro.fleet.sketch import sketch_of
from repro.fleet.spec import FleetSpec, TenantSpec, default_tenants


def small_fleet(devices: int = 6, **overrides) -> FleetSpec:
    defaults = dict(tenants=default_tenants(io_count=20), devices=devices,
                    preset="tiny", seed=11)
    defaults.update(overrides)
    return FleetSpec(**defaults)


def synthetic_device(index: int, tenants: dict[str, np.ndarray],
                     host_pages: int = 100, ftl_pages: int = 150,
                     erases: int = 4,
                     elapsed_ns: int = 1_000_000_000) -> DeviceResult:
    slices = tuple(
        TenantSlice(tenant=name, requests=len(lat),
                    sketch=sketch_of(lat, compression=64),
                    elapsed_ns=elapsed_ns)
        for name, lat in tenants.items())
    return DeviceResult(
        index=index, seed=index, tenants=slices, elapsed_ns=elapsed_ns,
        host_program_pages=host_pages, ftl_program_pages=ftl_pages,
        erase_count=erases, host_sectors_written=host_pages * 2)


class TestVerdict:
    def verdict(self, p99=100.0, p999=200.0, slo99=0.0, slo999=0.0):
        return TenantVerdict(tenant="t", devices=1, requests=10,
                             p50_us=10.0, p99_us=p99, p999_us=p999,
                             p9999_us=300.0, slo_p99_us=slo99,
                             slo_p999_us=slo999)

    def test_zero_threshold_disables_check(self):
        assert self.verdict(p99=1e9, slo99=0.0).ok

    def test_violation_detected(self):
        v = self.verdict(p99=500.0, slo99=100.0)
        assert not v.p99_ok and not v.ok
        assert "VIOLATED" in v.row()[-2]

    def test_within_slo_ok(self):
        v = self.verdict(p99=50.0, slo99=100.0, p999=150.0, slo999=200.0)
        assert v.ok
        assert v.row()[-2] == "100 ok"

    def test_unconstrained_renders_dash(self):
        assert self.verdict().row()[-1] == "-"


class TestAggregateFleet:
    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="no device results"):
            aggregate_fleet(small_fleet(), [])

    def test_waf_is_exact_page_ratio_not_mean_of_ratios(self):
        spec = FleetSpec(tenants=(TenantSpec(name="t", rate_iops=100.0),),
                         devices=2)
        lat = np.full(10, 50.0)
        # device 0: 10x the traffic of device 1, different per-device WAF.
        devices = [
            synthetic_device(0, {"t": lat}, host_pages=1000, ftl_pages=3000),
            synthetic_device(1, {"t": lat}, host_pages=100, ftl_pages=110),
        ]
        report = aggregate_fleet(spec, devices)
        assert report.waf == pytest.approx(3110 / 1100)
        # a mean of per-device ratios would say (3.0 + 1.1) / 2 = 2.05
        assert report.waf != pytest.approx(2.05)

    def test_verdicts_use_merged_distribution(self):
        spec = FleetSpec(
            tenants=(TenantSpec(name="t", rate_iops=100.0,
                                slo_p99_us=500.0),),
            devices=2)
        fast = np.full(99, 10.0)
        slow = np.full(99, 1000.0)  # one slow device trips the fleet SLO
        report = aggregate_fleet(spec, [
            synthetic_device(0, {"t": fast}),
            synthetic_device(1, {"t": slow}),
        ])
        verdict = report.verdicts[0]
        assert verdict.devices == 2
        assert verdict.requests == 198
        assert not verdict.ok
        assert report.violations == ["t"]

    def test_wear_forecast_scales_with_erase_rate(self):
        spec = FleetSpec(tenants=(TenantSpec(name="t", rate_iops=100.0),),
                         devices=1)
        lat = np.full(10, 50.0)
        # 4 erases in 1 simulated second per device
        report = aggregate_fleet(spec, [synthetic_device(0, {"t": lat})])
        config = spec.device_config()
        budget = config.erase_limit * config.geometry.total_blocks
        assert report.erases_per_device_day == pytest.approx(4 * 86_400)
        assert report.forecast_wearout_days == pytest.approx(
            budget / (4 * 86_400))

    def test_idle_fleet_forecast_is_inf(self):
        spec = FleetSpec(tenants=(TenantSpec(name="t", rate_iops=100.0),),
                         devices=1)
        lat = np.full(10, 50.0)
        report = aggregate_fleet(
            spec, [synthetic_device(0, {"t": lat}, erases=0)])
        assert report.forecast_wearout_days == float("inf")


class TestEndToEnd:
    def test_report_shape(self):
        spec = small_fleet()
        report = run_fleet(spec)
        assert isinstance(report, FleetReport)
        assert report.devices == spec.devices
        assert report.requests == spec.devices * sum(
            t.io_count for t in spec.tenants)
        headers, rows = report.slo_table()
        assert len(rows) == len(spec.tenants) + 1  # + fleet row
        assert rows[-1][0] == "fleet"
        assert len(headers) == len(rows[0])
        assert any(r[0] == "SLO verdict" for r in report.summary_rows())

    def test_quantiles_monotone(self):
        report = run_fleet(small_fleet())
        for v in report.verdicts:
            qs = [v.p50_us, v.p99_us, v.p999_us, v.p9999_us]
            assert qs == sorted(qs)
        assert len(REPORT_QUANTILES) == 4

    def test_report_byte_identical_across_shard_plans(self):
        # The acceptance bar: merged SLO output is byte-identical
        # whatever the shard plan that produced the inputs.
        spec = small_fleet(devices=8)
        a = aggregate_fleet(spec, run_fleet_devices(spec, shards=1))
        b = aggregate_fleet(spec, run_fleet_devices(spec, shards=8))
        assert pickle.dumps(a) == pickle.dumps(b)
        assert a.slo_table() == b.slo_table()
