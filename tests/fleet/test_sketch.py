"""QuantileSketch: accuracy bound, mergeability, order independence.

The fleet layer's correctness story leans on three properties, each
pinned here (the hypothesis properties are the ISSUE's "merge-of-
sketches equals sketch-of-concatenation within the documented quantile
error bound, and merge is order-independent" satellite):

* a sketch's quantile estimates stay within the documented rank-error
  bound of the exact empirical quantiles;
* merging per-shard sketches is equivalent (within the same bound) to
  sketching the concatenated samples;
* the flat merge is order-independent to the byte, so shard/worker
  count cannot perturb fleet-level output.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.sketch import (
    QuantileSketch,
    merge_sketches,
    rank_error_bound,
    sketch_of,
)

QS = (0.01, 0.1, 0.5, 0.9, 0.99, 0.999)


def assert_within_bound(sketch, data: np.ndarray, compression: int) -> None:
    """Every tested quantile estimate must land between the exact
    empirical quantiles at q +/- rank_error_bound(q)."""
    ordered = np.sort(data)
    n = ordered.size
    for q in QS:
        estimate = sketch.quantile(q)
        eps = rank_error_bound(q, compression)
        lo = ordered[max(0, int(np.floor((q - eps) * (n - 1))))]
        hi = ordered[min(n - 1, int(np.ceil((q + eps) * (n - 1))))]
        assert lo <= estimate <= hi, (q, estimate, lo, hi)


class TestBasics:
    def test_empty_sketch_is_zero(self):
        sketch = QuantileSketch()
        assert len(sketch) == 0
        assert sketch.quantile(0.5) == 0.0
        assert sketch.mean == 0.0

    def test_single_value(self):
        sketch = QuantileSketch()
        sketch.add(42.0)
        assert sketch.quantile(0.0) == 42.0
        assert sketch.quantile(0.5) == 42.0
        assert sketch.quantile(1.0) == 42.0
        assert sketch.mean == 42.0

    def test_extremes_and_mean_are_exact(self):
        rng = np.random.default_rng(7)
        data = rng.lognormal(3.0, 1.0, 10_000)
        sketch = sketch_of(data)
        assert sketch.quantile(0.0) == data.min()
        assert sketch.quantile(1.0) == data.max()
        assert sketch.mean == pytest.approx(data.mean(), rel=1e-12)
        assert sketch.count == data.size

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            QuantileSketch(compression=4)
        with pytest.raises(ValueError):
            QuantileSketch().quantile(1.5)

    def test_centroid_count_stays_bounded(self):
        # O(compression) size whatever the op count: the whole point.
        for compression in (16, 64, 128):
            sketch = QuantileSketch(compression)
            sketch.extend(np.random.default_rng(3).normal(0, 1, 100_000))
            means, _ = sketch.centroids
            assert means.size <= 2 * compression

    def test_payload_is_small(self):
        sketch = sketch_of(np.random.default_rng(5).exponential(1, 50_000))
        assert len(pickle.dumps(sketch.compact())) < 8192

    def test_pickle_roundtrip(self):
        sketch = sketch_of(np.random.default_rng(9).exponential(1, 5_000))
        clone = pickle.loads(pickle.dumps(sketch))
        assert clone.count == sketch.count
        assert clone.quantile(0.99) == sketch.quantile(0.99)

    def test_weights_conserved(self):
        data = np.random.default_rng(11).exponential(1, 30_000)
        sketch = sketch_of(data)
        _, weights = sketch.centroids
        assert weights.sum() == pytest.approx(data.size)


class TestAccuracy:
    @pytest.mark.parametrize("dist", ["exponential", "lognormal", "uniform"])
    def test_bound_holds_on_common_shapes(self, dist):
        rng = np.random.default_rng(13)
        data = getattr(rng, dist)(size=50_000) * 100.0
        assert_within_bound(sketch_of(data), data, 128)

    def test_merge_matches_concatenation(self):
        rng = np.random.default_rng(17)
        data = rng.exponential(100.0, 60_000)
        parts = np.array_split(data, 23)
        merged = merge_sketches([sketch_of(p) for p in parts])
        assert merged.count == data.size
        assert_within_bound(merged, data, 128)


# ----------------------------------------------------------------------
# Hypothesis properties (the ISSUE's sketch satellite)
# ----------------------------------------------------------------------

values = st.floats(min_value=0.0, max_value=1e7,
                   allow_nan=False, allow_infinity=False)
samples = st.lists(values, min_size=1, max_size=400)


@settings(max_examples=60, deadline=None)
@given(chunks=st.lists(samples, min_size=1, max_size=8))
def test_property_merge_equals_concatenation(chunks):
    """merge(sketch(c) for c in chunks) ~= sketch(concat(chunks))
    within the documented rank-error bound, for arbitrary data."""
    compression = 64
    data = np.asarray([v for chunk in chunks for v in chunk])
    merged = merge_sketches([sketch_of(c, compression) for c in chunks])
    assert merged.count == data.size
    assert merged.quantile(0.0) == data.min()
    assert merged.quantile(1.0) == data.max()
    assert_within_bound(merged, data, compression)
    # ... and the direct sketch obeys the same bound.
    assert_within_bound(sketch_of(data, compression), data, compression)


@settings(max_examples=60, deadline=None)
@given(chunks=st.lists(samples, min_size=2, max_size=8),
       seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_property_merge_is_order_independent(chunks, seed):
    """Any permutation of the same sketches merges byte-identically."""
    sketches = [sketch_of(c, 64) for c in chunks]
    shuffled = sketches[:]
    np.random.default_rng(seed).shuffle(shuffled)
    a = merge_sketches(sketches)
    b = merge_sketches(shuffled)
    assert a.count == b.count
    assert a.total == b.total
    assert a.minimum == b.minimum and a.maximum == b.maximum
    assert np.array_equal(a.centroids[0], b.centroids[0])
    assert np.array_equal(a.centroids[1], b.centroids[1])
    for q in QS:
        assert a.quantile(q) == b.quantile(q)


@settings(max_examples=40, deadline=None)
@given(data=samples)
def test_property_quantiles_are_monotone_and_in_range(data):
    sketch = sketch_of(data, 64)
    estimates = sketch.quantiles(np.linspace(0.0, 1.0, 21))
    assert all(a <= b + 1e-9 for a, b in zip(estimates, estimates[1:]))
    assert estimates[0] == min(data)
    assert estimates[-1] == max(data)
