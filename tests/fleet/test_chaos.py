"""Fleet fault campaigns: deterministic plans, degraded-mode fleet
semantics, durability accounting, and the run-manifest handshake."""

import pickle
from dataclasses import replace

import pytest

from repro.exp import ResultCache, Runner
from repro.faults.plan import (
    DIE_OFFLINE,
    ERASE_FAIL,
    POWER_CUT,
    PROGRAM_FAIL,
    UNCORRECTABLE_READ,
)
from repro.fleet import (
    CAMPAIGNS,
    CampaignSpec,
    DeviceResult,
    FailedDevice,
    FleetDeviceError,
    FleetShardCell,
    FleetSpec,
    aggregate_fleet,
    cached_shard_count,
    campaign_device_plans,
    default_tenants,
    device_fault_plan,
    fleet_cells,
    load_fleet_manifest,
    run_fleet_devices,
    run_fleet_shard_cell,
    simulate_device,
    write_fleet_manifest,
)


def small_spec(campaign=None, devices=8, seed=7, io_count=50) -> FleetSpec:
    return FleetSpec(tenants=default_tenants(io_count=io_count),
                     devices=devices, preset="tiny", seed=seed,
                     campaign=campaign)


def forced(kind: str, afr: float = 50.0, **kwargs) -> CampaignSpec:
    """A campaign where (nearly) every device fails, with one kind."""
    return replace(CAMPAIGNS["default"], afr=afr, mix=((kind, 1.0),), **kwargs)


class TestCampaignSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignSpec(afr=-0.1)
        with pytest.raises(ValueError):
            CampaignSpec(hazard="sideways")
        with pytest.raises(ValueError):
            CampaignSpec(mix=(("gamma_ray", 1.0),))
        with pytest.raises(ValueError):
            CampaignSpec(mix=((PROGRAM_FAIL, 0.0),))
        with pytest.raises(ValueError):
            CampaignSpec(spare_blocks_min=0)

    def test_zero_afr_is_inactive(self):
        assert not replace(CAMPAIGNS["default"], afr=0.0).active
        assert CAMPAIGNS["default"].active

    def test_failure_probability_monotone_in_afr(self):
        probabilities = [replace(CAMPAIGNS["default"], afr=a)
                         .failure_probability() for a in (0.1, 1.0, 10.0)]
        assert probabilities == sorted(probabilities)
        assert 0 < probabilities[0] < probabilities[-1] < 1

    def test_named_campaigns_are_valid(self):
        for name, campaign in CAMPAIGNS.items():
            assert campaign.name == name
            assert campaign.active

    def test_spec_rejects_non_campaign(self):
        with pytest.raises(ValueError, match="CampaignSpec"):
            FleetSpec(tenants=default_tenants(), campaign="default")


class TestDeviceFaultPlan:
    def test_no_campaign_plans_nothing(self):
        spec = small_spec()
        assert device_fault_plan(spec, 0).specs == ()

    def test_zero_afr_plans_nothing(self):
        spec = small_spec(replace(CAMPAIGNS["default"], afr=0.0))
        for index in range(spec.devices):
            assert device_fault_plan(spec, index).specs == ()

    def test_pure_function_of_identity(self):
        spec = small_spec(CAMPAIGNS["default"], devices=64)
        wider = replace(spec, devices=256)
        for index in range(64):
            assert device_fault_plan(spec, index) == \
                device_fault_plan(wider, index)

    def test_forced_mix_draws_that_kind(self):
        for kind in (PROGRAM_FAIL, ERASE_FAIL, UNCORRECTABLE_READ,
                     DIE_OFFLINE, POWER_CUT):
            spec = small_spec(forced(kind))
            plans = campaign_device_plans(spec)
            assert plans, kind
            assert all(p.specs[0].kind == kind for p in plans.values())

    def test_hazard_shapes_order_onset(self):
        # Infant mortality arms earlier in life than wear-out.
        onsets = {}
        for hazard in ("infant", "constant", "wearout"):
            spec = small_spec(forced(POWER_CUT, hazard=hazard), devices=64)
            plans = campaign_device_plans(spec)
            onsets[hazard] = sum(p.specs[0].at_op for p in plans.values()) \
                / len(plans)
        assert onsets["infant"] < onsets["constant"] < onsets["wearout"]

    def test_die_offline_picks_a_real_die(self):
        spec = small_spec(forced(DIE_OFFLINE), devices=16)
        dies = spec.device_config().geometry.dies_total
        for plan in campaign_device_plans(spec).values():
            assert 0 <= plan.specs[0].die < dies

    def test_campaign_config_lowers_spare_floor(self):
        spec = small_spec(CAMPAIGNS["default"])
        assert spec.device_config().spare_blocks_min == \
            CAMPAIGNS["default"].spare_blocks_min
        assert small_spec().device_config().spare_blocks_min == 0


class TestZeroAfrIdentity:
    def test_zero_afr_matches_campaign_free_bytes(self):
        base = small_spec()
        zero = small_spec(replace(CAMPAIGNS["default"], afr=0.0))
        plain = run_fleet_devices(base, None, shards=2)
        chaos = run_fleet_devices(zero, None, shards=2)
        assert [pickle.dumps(d) for d in plain] == \
            [pickle.dumps(d) for d in chaos]
        assert aggregate_fleet(base, plain).slo_table() == \
            aggregate_fleet(zero, chaos).slo_table()


class TestCampaignReproducibility:
    def test_jobs_and_shards_invisible(self):
        spec = small_spec(CAMPAIGNS["default"], devices=12)
        reference = run_fleet_devices(spec, None, shards=1)
        assert any(d.faulted for d in reference) or True  # layout only
        for runner, shards in ((Runner(jobs=2, cache=None), 1),
                               (None, 4), (Runner(jobs=2, cache=None), 4)):
            devices = run_fleet_devices(spec, runner, shards=shards)
            assert [pickle.dumps(d) for d in devices] == \
                [pickle.dumps(d) for d in reference]


class TestDegradedDevices:
    def test_program_fail_storm_goes_read_only(self):
        spec = small_spec(forced(PROGRAM_FAIL), devices=6)
        results = run_fleet_devices(spec, None, shards=1)
        degraded = [d for d in results if d.degraded]
        assert degraded
        for device in degraded:
            assert device.degraded_kind == "read_only"
            assert device.degraded_at_ns >= 0
            assert device.ops_before_degraded >= 0
            assert device.failed_requests > 0

    def test_power_cut_partial_result(self):
        spec = small_spec(forced(POWER_CUT), devices=4)
        for index in range(spec.devices):
            device = simulate_device(spec, index)
            assert device.degraded_kind == "power_cut"
            assert device.failed_requests > 0
            # Acked data survives a power cut: the cache was never
            # flush-acknowledged, so nothing acknowledged is lost.
            assert device.sectors_lost == 0

    def test_firing_log_matches_plans(self):
        spec = small_spec(forced(PROGRAM_FAIL), devices=10)
        plans = campaign_device_plans(spec)
        results = run_fleet_devices(spec, None, shards=2)
        fired = {d.index for d in results if d.fault_events}
        assert fired == set(plans)
        for device in results:
            for kind, _, _ in device.fault_events:
                assert kind == PROGRAM_FAIL


class TestAggregateChaos:
    def test_availability_and_splits(self):
        spec = small_spec(forced(POWER_CUT), devices=6, io_count=40)
        report = aggregate_fleet(spec, run_fleet_devices(spec, None))
        assert 0 < report.availability < 1
        assert report.devices_degraded == 6
        assert report.faulted_sketch is not None
        assert report.healthy_sketch is None  # everyone faulted
        headers, rows = report.chaos_table()
        assert rows[0][0] == "healthy" and rows[1][0] == "faulted"

    def test_fault_free_report_keeps_defaults(self):
        spec = small_spec()
        report = aggregate_fleet(spec, run_fleet_devices(spec, None))
        assert report.availability == 1.0
        assert report.healthy_sketch is None
        assert report.durability_ok

    def test_die_loss_fails_durability(self):
        spec = small_spec(forced(DIE_OFFLINE, afr=200.0), devices=8,
                          io_count=80)
        report = aggregate_fleet(spec, run_fleet_devices(spec, None))
        assert report.sectors_lost == sum(
            d.sectors_lost for d in run_fleet_devices(spec, None))
        if report.sectors_lost:
            assert not report.durability_ok

    def test_failed_devices_fold_into_report(self):
        spec = small_spec()
        devices = list(run_fleet_devices(spec, None))
        devices[3] = FailedDevice(index=3, seed=spec.device_seed(3),
                                  error="boom")
        report = aggregate_fleet(spec, devices)
        assert report.devices == spec.devices
        assert len(report.failed_devices) == 1
        assert not report.durability_ok
        assert report.availability < 1.0


class TestKeepGoingShards:
    def test_crashed_device_isolated(self, monkeypatch):
        import repro.fleet.shard as shard_module

        spec = small_spec(devices=4)
        real = shard_module.simulate_device

        def flaky(spec_, index):
            if index == 2:
                raise RuntimeError("injected crash")
            return real(spec_, index)

        monkeypatch.setattr(shard_module, "simulate_device", flaky)
        cell = FleetShardCell(spec, 0, 4, keep_going=True)
        results = run_fleet_shard_cell(cell)
        assert isinstance(results[2], FailedDevice)
        assert "injected crash" in results[2].error
        assert "--only 2" in results[2].repro
        assert all(isinstance(r, DeviceResult)
                   for i, r in enumerate(results) if i != 2)

    def test_fail_fast_names_device(self, monkeypatch):
        import repro.fleet.shard as shard_module

        spec = small_spec(devices=4)
        monkeypatch.setattr(
            shard_module, "simulate_device",
            lambda s, i: (_ for _ in ()).throw(RuntimeError("boom")))
        with pytest.raises(FleetDeviceError) as excinfo:
            run_fleet_shard_cell(FleetShardCell(spec, 0, 4))
        message = str(excinfo.value)
        assert "device #0" in message
        assert "device key" in message
        assert "rerun standalone" in message and "--only 0" in message

    def test_keep_going_is_part_of_the_cache_key(self):
        spec = small_spec()
        [plain] = fleet_cells(spec, shards=1)
        [isolating] = fleet_cells(spec, shards=1, keep_going=True)
        assert plain.key("s") != isolating.key("s")


class TestManifest:
    def test_roundtrip_and_cached_counts(self, tmp_path):
        spec = small_spec(devices=4, io_count=20)
        cache = ResultCache(tmp_path)
        write_fleet_manifest(spec, cache, shards=2)
        manifest = load_fleet_manifest(spec, cache, shards=2)
        assert manifest is not None
        assert len(manifest["cells"]) == 2
        assert cached_shard_count(cache, manifest) == 0

        runner = Runner(jobs=1, cache=cache)
        run_fleet_devices(spec, runner, shards=2)
        assert cached_shard_count(cache, manifest) == 2

    def test_manifest_is_run_specific(self, tmp_path):
        cache = ResultCache(tmp_path)
        write_fleet_manifest(small_spec(devices=4, io_count=20), cache,
                             shards=2)
        assert load_fleet_manifest(small_spec(devices=4, io_count=20),
                                   cache, shards=4) is None
        assert load_fleet_manifest(small_spec(devices=6, io_count=20),
                                   cache, shards=2) is None
