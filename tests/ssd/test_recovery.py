"""Power-loss recovery: OOB full-scan rebuild."""

import numpy as np
import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.ssd.ftl import Ftl
from repro.ssd.mapping import UNMAPPED
from repro.ssd.presets import tiny
from repro.ssd.recovery import recover_ftl


def crash_and_recover(ftl):
    """Simulate power loss: throw the FTL away, keep the flash."""
    return recover_ftl(ftl.config, ftl.nand)


class TestBasicRecovery:
    def test_flushed_data_survives(self):
        ftl = Ftl(tiny())
        for lpn in range(64):
            ftl.write(lpn)
        ftl.flush()
        expected = {lpn: int(ftl.mapping.l2p[lpn]) for lpn in range(64)}
        recovered, report = crash_and_recover(ftl)
        for lpn, psa in expected.items():
            got = recovered.pslc.lookup(lpn)
            if got is None:
                got = int(recovered.mapping.l2p[lpn])
            assert got == psa, f"lpn {lpn}"
        assert report.sectors_recovered + report.pslc_sectors_recovered >= 64

    def test_cached_unflushed_data_lost(self):
        ftl = Ftl(tiny())
        ftl.write(5)  # stays in RAM cache
        recovered, _ = crash_and_recover(ftl)
        assert int(recovered.mapping.l2p[5]) == UNMAPPED
        assert recovered.pslc.lookup(5) is None

    def test_newest_copy_wins(self):
        ftl = Ftl(tiny())
        for _ in range(5):
            ftl.write(7)
            ftl.flush()
        latest = int(ftl.mapping.l2p[7])
        recovered, report = crash_and_recover(ftl)
        assert int(recovered.mapping.l2p[7]) == latest
        assert report.stale_copies_skipped >= 4

    def test_survives_gc_churn(self):
        ftl = Ftl(tiny())
        rng = np.random.default_rng(2)
        for _ in range(4000):
            ftl.write(int(rng.integers(ftl.num_lpns)))
        ftl.flush()
        assert ftl.stats.gc_invocations > 0
        expected = {
            lpn: int(ftl.mapping.l2p[lpn])
            for lpn in range(ftl.num_lpns)
            if int(ftl.mapping.l2p[lpn]) != UNMAPPED
        }
        recovered, _ = crash_and_recover(ftl)
        for lpn, psa in expected.items():
            got = recovered.pslc.lookup(lpn)
            if got is None:
                got = int(recovered.mapping.l2p[lpn])
            assert got == psa
        recovered.check_invariants()

    def test_trim_resurrection_documented_behaviour(self):
        """Trims write nothing to flash, so a full OOB scan resurrects
        the last written copy — the documented limitation."""
        ftl = Ftl(tiny())
        ftl.write(9)
        ftl.flush()
        ftl.trim(9)
        assert int(ftl.mapping.l2p[9]) == UNMAPPED
        recovered, _ = crash_and_recover(ftl)
        resurrected = (recovered.pslc.lookup(9) is not None
                       or int(recovered.mapping.l2p[9]) != UNMAPPED)
        assert resurrected

    def test_partial_blocks_padded(self):
        ftl = Ftl(tiny())
        ftl.write(0)
        ftl.flush()  # leaves the host-stream block partially written
        recovered, report = crash_and_recover(ftl)
        assert report.blocks_padded > 0
        # Every non-free block is now fully written.
        geometry = recovered.geometry
        ptrs = recovered.nand.block_write_ptr
        assert np.all((ptrs == 0) | (ptrs == geometry.pages_per_block))


class TestPslcRecovery:
    def test_buffered_sectors_recovered_into_index(self):
        config = tiny().with_changes(pslc_blocks=4, pslc_drain_threshold=0.95)
        ftl = Ftl(config)
        for lpn in range(16):
            ftl.write(lpn)
        ftl.flush()
        staged = dict(ftl.pslc.index)
        assert staged  # something is actually buffered
        recovered, report = crash_and_recover(ftl)
        for lpn, psa in staged.items():
            assert recovered.pslc.lookup(lpn) == psa
        assert report.pslc_sectors_recovered >= len(staged)


class TestRecoveredFtlIsOperational:
    def test_can_keep_writing_after_recovery(self):
        ftl = Ftl(tiny())
        rng = np.random.default_rng(3)
        for _ in range(2500):
            ftl.write(int(rng.integers(ftl.num_lpns)))
        ftl.flush()
        recovered, _ = crash_and_recover(ftl)
        for _ in range(2500):
            recovered.write(int(rng.integers(recovered.num_lpns)))
        recovered.flush()
        recovered.check_invariants()

    def test_translation_pages_relocated(self):
        ftl = Ftl(tiny())
        for lpn in range(32):
            ftl.write(lpn)
        ftl.flush()
        ftl.checkpoint()
        stored = {
            tp: int(ftl.mapping.tp_stored_ppn[tp])
            for tp in range(ftl.mapping.num_tps)
            if int(ftl.mapping.tp_stored_ppn[tp]) >= 0
        }
        assert stored
        recovered, report = crash_and_recover(ftl)
        for tp, ppn in stored.items():
            assert int(recovered.mapping.tp_stored_ppn[tp]) == ppn
        assert report.translation_pages_found >= len(stored)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 500), writes=st.integers(200, 1200))
# Regression: a mid-page mapping-eviction used to trigger foreground GC
# that re-programmed a superseded sector with a newer sequence number
# than its live copy, so newest-wins recovery resurrected stale data.
@example(seed=28, writes=849)
def test_recovery_roundtrip_property(seed, writes):
    """After any flushed workload, recovery reproduces the live map."""
    ftl = Ftl(tiny())
    rng = np.random.default_rng(seed)
    for _ in range(writes):
        ftl.write(int(rng.integers(ftl.num_lpns)))
    ftl.flush()
    live = {
        lpn: int(ftl.mapping.l2p[lpn])
        for lpn in range(ftl.num_lpns)
        if int(ftl.mapping.l2p[lpn]) != UNMAPPED
    }
    live_pslc = dict(ftl.pslc.index)
    recovered, _ = crash_and_recover(ftl)
    for lpn, psa in live.items():
        assert int(recovered.mapping.l2p[lpn]) == psa
    for lpn, psa in live_pslc.items():
        assert recovered.pslc.lookup(lpn) == psa
