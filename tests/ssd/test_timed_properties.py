"""Timed-scheduler properties: protocol rules and mode equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash.timing import PSLC, profile
from repro.ssd.device import SimulatedSSD
from repro.ssd.ops import OpKind
from repro.ssd.presets import tiny, vertex2_like
from repro.ssd.timed import TimedSSD


class RecordingTimedSSD(TimedSSD):
    """Capture every scheduled op with its resource windows."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.windows: list[tuple[str, int, int, int]] = []  # kind, die, s, e

    def _schedule_op(self, op, earliest):
        die_before = [die.free_at for die in self._dies]
        end = super()._schedule_op(op, earliest)
        for index, before in enumerate(die_before):
            after = self._dies[index].free_at
            if after != before:
                self.windows.append((op.kind.value, index, before, after))
        return end


class TestProtocolRules:
    def run_workload(self, config, writes=1500, seed=0):
        device = RecordingTimedSSD(config)
        rng = np.random.default_rng(seed)
        for _ in range(writes):
            device.submit("write", int(rng.integers(device.num_sectors)), 1,
                          at_ns=device.now)
        device.flush()
        return device

    def test_die_busy_windows_never_overlap(self):
        device = self.run_workload(tiny())
        by_die: dict[int, list[tuple[int, int]]] = {}
        for _, die, start, end in device.windows:
            by_die.setdefault(die, []).append((start, end))
        assert by_die
        for die, spans in by_die.items():
            spans.sort()
            for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
                assert b0 >= a0  # monotone claims
                # die_free only ever moves forward
                assert b1 >= a1

    def test_resource_timelines_monotone(self):
        device = self.run_workload(tiny(), writes=800, seed=1)
        assert min(die.free_at for die in device._dies) >= 0
        assert min(chan.free_at for chan in device._channels) >= 0
        # The kernel's busy accounting agrees with the claims made.
        assert all(die.busy_ns <= die.free_at for die in device._dies)

    def test_request_completion_after_submission(self):
        device = self.run_workload(tiny(), writes=500, seed=2)
        for request in device.completed:
            assert request.complete_ns >= request.submit_ns

    def test_pslc_blocks_charge_pslc_program_time(self):
        config = vertex2_like(scale=2).with_changes(
            pslc_blocks=8, cache_sectors=4, pslc_drain_threshold=0.99,
        )
        device = RecordingTimedSSD(config)
        for lba in range(16):
            device.submit("write", lba, 1, at_ns=device.now)
        timing = profile(config.timing_name)
        program_windows = [
            (end - start) for kind, _, start, end in device.windows
            if kind == "program"
        ]
        assert program_windows
        # Buffer-block programs take pSLC time, far below the async
        # profile's 900 us.
        assert min(program_windows) < timing.program_ns


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 200), writes=st.integers(100, 600))
def test_counter_timed_smart_equivalence_property(seed, writes):
    """Any request stream yields identical program/erase accounting in
    both execution modes — they are the same FTL."""
    config = tiny()
    counter = SimulatedSSD(config)
    timed = TimedSSD(config)
    rng = np.random.default_rng(seed)
    for _ in range(writes):
        action = rng.random()
        lba = int(rng.integers(counter.num_sectors))
        if action < 0.8:
            counter.write_sectors(lba, 1)
            timed.submit("write", lba, 1, at_ns=timed.now)
        elif action < 0.9:
            counter.read_sectors(lba, 1)
            timed.submit("read", lba, 1, at_ns=timed.now)
        else:
            counter.trim_sectors(lba, 1)
            timed.submit("trim", lba, 1, at_ns=timed.now)
    counter.flush()
    timed.flush()
    assert counter.smart.host_program_pages == timed.smart.host_program_pages
    assert counter.smart.ftl_program_pages == timed.smart.ftl_program_pages
    assert counter.smart.erase_count == timed.smart.erase_count
