"""Write cache: absorption, flush batching, draining."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ssd.cache import WriteCache


class TestInsert:
    def test_miss_then_hit(self):
        cache = WriteCache(8)
        assert not cache.insert(5)
        assert cache.insert(5)
        assert cache.hits == 1
        assert len(cache) == 1

    def test_contains(self):
        cache = WriteCache(8)
        cache.insert(3)
        assert 3 in cache
        assert 4 not in cache

    def test_needs_flush_above_capacity(self):
        cache = WriteCache(2)
        cache.insert(0)
        cache.insert(1)
        assert not cache.needs_flush
        cache.insert(2)
        assert cache.needs_flush

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            WriteCache(0)

    def test_hit_rate(self):
        cache = WriteCache(8)
        cache.insert(1)
        cache.insert(1)
        assert cache.hit_rate == 0.5
        assert WriteCache(4).hit_rate == 0.0


class TestFlushBatches:
    def test_batch_is_oldest_first(self):
        cache = WriteCache(8)
        for lpn in (9, 3, 7):
            cache.insert(lpn)
        batch = cache.take_flush_batch(2)
        assert sorted(batch) == batch
        assert set(batch) == {9, 3}  # the two oldest

    def test_batch_sorted_by_lpn(self):
        cache = WriteCache(8)
        for lpn in (9, 3, 7, 1):
            cache.insert(lpn)
        assert cache.take_flush_batch(4) == [1, 3, 7, 9]

    def test_rewrite_refreshes_age(self):
        cache = WriteCache(8)
        cache.insert(1)
        cache.insert(2)
        cache.insert(1)  # refresh: 2 becomes oldest
        assert cache.take_flush_batch(1) == [2]

    def test_batch_size_validation(self):
        with pytest.raises(ValueError):
            WriteCache(4).take_flush_batch(0)

    def test_drop_removes_pending(self):
        cache = WriteCache(8)
        cache.insert(1)
        assert cache.drop(1)
        assert not cache.drop(1)
        assert len(cache) == 0

    def test_drain_batches_empties(self):
        cache = WriteCache(8)
        for lpn in range(5):
            cache.insert(lpn)
        batches = cache.drain_batches(2)
        assert [len(b) for b in batches] == [2, 2, 1]
        assert len(cache) == 0


@settings(max_examples=30)
@given(st.lists(st.integers(0, 50), max_size=200))
def test_every_write_flushed_or_absorbed_property(lpns):
    """Sectors leave the cache exactly once per distinct pending LPN."""
    cache = WriteCache(4)
    flushed = []
    absorbed = 0
    for lpn in lpns:
        if cache.insert(lpn):
            absorbed += 1
        while cache.needs_flush:
            flushed.extend(cache.take_flush_batch(2))
    for batch in cache.drain_batches(2):
        flushed.extend(batch)
    assert len(flushed) + absorbed == len(lpns)
    # Flushed multiset can repeat LPNs (re-inserted after flush) but the
    # total count is conserved, and nothing pending remains.
    assert len(cache) == 0
