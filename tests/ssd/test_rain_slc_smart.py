"""RAIN accounting, pSLC buffer, SMART counters."""

import pytest

from repro.flash.geometry import Geometry
from repro.ssd.ops import FlashOp, OpKind, OpReason
from repro.ssd.rain import RainAccountant
from repro.ssd.slc import PslcBuffer
from repro.ssd.smart import SmartCounters


class TestRain:
    def test_disabled_never_due(self):
        rain = RainAccountant(0)
        assert not any(rain.on_data_page() for _ in range(100))
        assert rain.parity_pages == 0

    def test_parity_every_k_pages(self):
        rain = RainAccountant(4)
        due = [rain.on_data_page() for _ in range(12)]
        assert due == [False, False, False, True] * 3
        assert rain.parity_pages == 3

    def test_flush_closes_partial_stripe(self):
        rain = RainAccountant(4)
        rain.on_data_page()
        assert rain.flush()
        assert rain.parity_pages == 1
        assert not rain.flush()  # nothing pending

    def test_overhead_ratio(self):
        rain = RainAccountant(15)
        for _ in range(30):
            rain.on_data_page()
        assert rain.overhead_ratio() == pytest.approx(2 / 30)

    def test_invalid_stripe(self):
        with pytest.raises(ValueError):
            RainAccountant(1)


GEOM = Geometry(
    channels=1, chips_per_channel=1, dies_per_chip=1, planes_per_die=1,
    blocks_per_plane=8, pages_per_block=4, page_size=8192, sector_size=4096,
)


class TestPslc:
    def test_disabled_when_no_blocks(self):
        buf = PslcBuffer(GEOM, [])
        assert not buf.enabled
        assert buf.used_fraction() == 0.0

    def test_stage_page_assigns_slots(self):
        buf = PslcBuffer(GEOM, [0, 1])
        ppn, pairs = buf.stage_page([10, 11])
        assert [lpn for lpn, _ in pairs] == [10, 11]
        assert [psa for _, psa in pairs] == [ppn * 2, ppn * 2 + 1]

    def test_stage_page_size_validated(self):
        buf = PslcBuffer(GEOM, [0])
        with pytest.raises(ValueError):
            buf.stage_page([])
        with pytest.raises(ValueError):
            buf.stage_page([1, 2, 3])  # > sectors_per_page (2)

    def test_lookup_and_overwrite(self):
        buf = PslcBuffer(GEOM, [0, 1])
        _, pairs1 = buf.stage_page([42])
        assert buf.lookup(42) == pairs1[0][1]
        _, pairs2 = buf.stage_page([42])
        assert buf.lookup(42) == pairs2[0][1]
        assert pairs1[0][1] != pairs2[0][1]

    def test_invalidate(self):
        buf = PslcBuffer(GEOM, [0])
        buf.stage_page([7])
        assert buf.invalidate(7)
        assert buf.lookup(7) is None
        assert not buf.invalidate(7)

    def test_used_fraction_grows(self):
        buf = PslcBuffer(GEOM, [0, 1])
        assert buf.used_fraction() == 0.0
        buf.stage_page([0, 1])
        # Page-granular fill: 1 of (2 blocks x 4 pages) written.
        assert buf.used_fraction() == pytest.approx(1 / 8)
        buf.stage_page([2, 3])
        assert buf.used_fraction() == pytest.approx(2 / 8)

    def test_fills_then_rejects(self):
        buf = PslcBuffer(GEOM, [0])
        for page in range(GEOM.pages_per_block):
            buf.stage_page([2 * page, 2 * page + 1])
        assert not buf.has_space()
        with pytest.raises(RuntimeError):
            buf.stage_page([999])

    def test_evict_block_returns_valid_pairs(self):
        buf = PslcBuffer(GEOM, [0, 1])
        buf.stage_page([0, 1])
        buf.stage_page([2, 3])
        buf.invalidate(1)
        block = buf.pick_drain_block()
        assert block is not None
        victims = buf.evict_block(block)
        lpns = {lpn for lpn, _ in victims}
        assert 1 not in lpns
        assert lpns  # something was still valid
        for lpn in lpns:
            assert buf.lookup(lpn) is None

    def test_evicted_block_reusable(self):
        buf = PslcBuffer(GEOM, [0])
        for page in range(GEOM.pages_per_block):
            buf.stage_page([2 * page, 2 * page + 1])
        block = buf.pick_drain_block()
        buf.evict_block(block)
        assert buf.has_space()
        buf.stage_page([1000])


class TestSmart:
    def test_host_vs_ftl_attribution(self):
        smart = SmartCounters()
        smart.record(FlashOp(OpKind.PROGRAM, 0, OpReason.HOST, 100))
        smart.record(FlashOp(OpKind.PROGRAM, 1, OpReason.GC, 100))
        smart.record(FlashOp(OpKind.PROGRAM, 2, OpReason.META, 100))
        smart.record(FlashOp(OpKind.PROGRAM, 3, OpReason.PARITY, 100))
        assert smart.host_program_pages == 1
        assert smart.ftl_program_pages == 3
        assert smart.gc_program_pages == 1
        assert smart.meta_program_pages == 1
        assert smart.parity_program_pages == 1

    def test_reads_and_erases(self):
        smart = SmartCounters()
        smart.record(FlashOp(OpKind.READ, 0, OpReason.HOST, 100))
        smart.record(FlashOp(OpKind.ERASE, 0, OpReason.GC))
        assert smart.read_pages == 1
        assert smart.erase_count == 1

    def test_waf(self):
        smart = SmartCounters(host_program_pages=10, ftl_program_pages=9)
        assert smart.waf() == pytest.approx(0.9)
        assert SmartCounters().waf() == 0.0

    def test_host_bytes_per_nand_page(self):
        smart = SmartCounters(
            host_program_pages=10, ftl_program_pages=0, host_sectors_written=80
        )
        assert smart.host_bytes_per_nand_page(4096) == pytest.approx(32768.0)

    def test_snapshot_and_delta(self):
        smart = SmartCounters(host_program_pages=5)
        before = smart.snapshot()
        smart.host_program_pages += 3
        delta = smart.delta(before)
        assert delta.host_program_pages == 3
        before.host_program_pages = 99  # snapshot is independent
        assert smart.host_program_pages == 8

    def test_render_contains_counters(self):
        smart = SmartCounters(host_program_pages=7, ftl_program_pages=3)
        text = smart.render()
        assert "Host_Program_Page_Count" in text
        assert "FTL_Program_Page_Count" in text
        assert "247" in text and "248" in text
