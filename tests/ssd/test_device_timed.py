"""Device façade (SMART accounting) and the timed executor."""

import numpy as np
import pytest

from repro.flash.signals import render_samples
from repro.flash.timing import profile
from repro.ssd.device import SimulatedSSD
from repro.ssd.host import HostDevice
from repro.ssd.presets import tiny
from repro.ssd.timed import BackgroundPolicy, BusTap, CompletedRequest, TimedSSD


class TestHostDeviceProtocol:
    def test_both_modes_conform(self):
        assert isinstance(SimulatedSSD(tiny()), HostDevice)
        assert isinstance(TimedSSD(tiny()), HostDevice)

    def test_timed_sync_wrappers_advance_clock(self):
        ssd = TimedSSD(tiny())
        request = ssd.write_sectors(0, 4)
        assert isinstance(request, CompletedRequest)
        assert ssd.now == request.complete_ns
        before = ssd.now
        ssd.read_sectors(0, 1)
        ssd.trim_sectors(0, 1)
        assert ssd.now >= before

    def test_timed_sync_matches_counter_accounting(self):
        """Driving a TimedSSD through the HostDevice surface yields the
        same SMART accounting as the counter-mode device."""
        config = tiny()
        timed, counted = TimedSSD(config), SimulatedSSD(config)
        rng = np.random.default_rng(5)
        for _ in range(800):
            lba = int(rng.integers(counted.num_sectors))
            timed.write_sectors(lba, 1)
            counted.write_sectors(lba, 1)
        timed.flush()
        counted.flush()
        assert timed.smart.host_program_pages == counted.smart.host_program_pages
        assert timed.smart.erase_count == counted.smart.erase_count

    def test_timed_shutdown_checkpoints(self):
        ssd = TimedSSD(tiny())
        ssd.write_sectors(0, 1)
        request = ssd.shutdown()
        assert request.kind == "shutdown"
        assert ssd.ftl.mapping.dirty_tp_count == 0
        assert ssd.smart.meta_program_pages >= 1


class TestBackgroundMaintenance:
    def dirty_device(self, writes=4000, seed=0):
        ssd = TimedSSD(tiny())
        rng = np.random.default_rng(seed)
        for _ in range(writes):
            ssd.submit("write", int(rng.integers(ssd.num_sectors)), 1,
                       at_ns=ssd.now)
        ssd.quiesce()
        return ssd

    def test_maintenance_runs_in_idle_gaps(self):
        ssd = self.dirty_device()
        invocations = ssd.ftl.stats.gc_invocations
        policy = BackgroundPolicy(idle_threshold_ns=1_000_000,
                                  check_interval_ns=1_000_000, max_blocks=2)
        ssd.enable_background_maintenance(policy)
        # A long host-visible idle gap: the process wakes inside it.
        ssd.submit("write", 0, 1, at_ns=ssd.now + 500_000_000)
        assert ssd.ftl.stats.gc_invocations > invocations

    def test_no_maintenance_without_idle_gap(self):
        ssd = self.dirty_device()
        policy = BackgroundPolicy(idle_threshold_ns=10_000_000_000,
                                  check_interval_ns=1_000_000)
        ssd.enable_background_maintenance(policy)
        invocations = ssd.ftl.stats.gc_invocations
        ssd.submit("write", 0, 1, at_ns=ssd.now + 500_000_000)
        assert ssd.ftl.stats.gc_invocations == invocations

    def test_disable_stops_process(self):
        ssd = self.dirty_device(writes=500)
        ssd.enable_background_maintenance(
            BackgroundPolicy(idle_threshold_ns=1_000_000,
                             check_interval_ns=1_000_000))
        ssd.disable_background_maintenance()
        assert ssd.kernel.pending_events >= 0  # cancelled, not crashed
        ssd.submit("write", 0, 1, at_ns=ssd.now + 100_000_000)

    def test_maintenance_can_delay_foreground(self):
        """A request landing while scheduled maintenance occupies the
        dies queues behind it — the §2.1 'unpredictable background
        operations' effect, now produced by overlap instead of a
        blocking idle() call."""
        quiet = self.dirty_device()
        quiet_req = quiet.submit("read", 3, 1,
                                 at_ns=quiet.now + 2_100_000)

        busy = self.dirty_device()
        busy.enable_background_maintenance(BackgroundPolicy(
            idle_threshold_ns=1_000_000, check_interval_ns=2_000_000,
            max_blocks=8))
        busy_req = busy.submit("read", 3, 1, at_ns=busy.now + 2_100_000)
        assert busy_req.latency_ns > quiet_req.latency_ns


class TestSimulatedSSD:
    def test_identify(self):
        ssd = SimulatedSSD(tiny(), model="unit-test-drive")
        info = ssd.identify()
        assert info.model == "unit-test-drive"
        assert info.capacity_bytes == ssd.num_sectors * ssd.sector_size

    def test_smart_tracks_host_sectors(self):
        ssd = SimulatedSSD(tiny())
        ssd.write_sectors(0, 4)
        ssd.read_sectors(0, 2)
        assert ssd.smart.host_sectors_written == 4
        assert ssd.smart.host_sectors_read == 2

    def test_flush_reaches_flash(self):
        ssd = SimulatedSSD(tiny())
        ssd.write_sectors(0, 1)
        assert ssd.smart.host_program_pages == 0
        ssd.flush()
        assert ssd.smart.host_program_pages >= 1

    def test_shutdown_checkpoints(self):
        ssd = SimulatedSSD(tiny())
        ssd.write_sectors(0, 1)
        ssd.shutdown()
        assert ssd.ftl.mapping.dirty_tp_count == 0
        assert ssd.smart.meta_program_pages >= 1

    def test_smart_snapshot_is_black_box_surface(self):
        ssd = SimulatedSSD(tiny())
        ssd.write_sectors(0, 8)
        ssd.flush()
        snap = ssd.smart_snapshot()
        ssd.write_sectors(8, 8)
        ssd.flush()
        delta = ssd.smart.delta(snap)
        assert delta.host_sectors_written == 8

    def test_waf_counted_under_churn(self):
        ssd = SimulatedSSD(tiny())
        rng = np.random.default_rng(0)
        for _ in range(3000):
            ssd.write_sectors(int(rng.integers(ssd.num_sectors)))
        ssd.flush()
        assert ssd.smart.waf() > 0  # GC + metadata happened
        ssd.ftl.check_invariants()


class TestTimedSSD:
    def test_cached_write_is_fast(self):
        ssd = TimedSSD(tiny())
        req = ssd.submit("write", 0, 1, at_ns=0)
        assert req.latency_ns == ssd.controller_overhead_ns

    def test_flash_read_pays_array_and_bus_time(self):
        config = tiny()
        ssd = TimedSSD(config)
        ssd.submit("write", 0, 1, at_ns=0)
        ssd.flush()
        start = ssd.now
        req = ssd.submit("read", 0, 1, at_ns=start + 10_000_000_000)
        timing = profile(config.timing_name)
        assert req.latency_ns >= timing.read_ns

    def test_unknown_kind(self):
        ssd = TimedSSD(tiny())
        with pytest.raises(ValueError):
            ssd.submit("scrub", 0, 1, at_ns=0)

    def test_time_monotone(self):
        ssd = TimedSSD(tiny())
        ssd.submit("write", 0, 1, at_ns=100)
        req = ssd.submit("write", 1, 1, at_ns=50)  # clamped forward
        assert req.submit_ns >= 100

    def test_queueing_delays_busy_die(self):
        """Two back-to-back flushes contend for dies/channels."""
        config = tiny().with_changes(cache_sectors=8)
        ssd = TimedSSD(config)
        lat = []
        for lpn in range(64):
            req = ssd.submit("write", lpn % ssd.num_sectors, 1, at_ns=ssd.now)
            lat.append(req.latency_ns)
        assert max(lat) > min(lat)  # some writes stalled on flush

    def test_gc_creates_latency_tail(self):
        config = tiny()
        ssd = TimedSSD(config)
        rng = np.random.default_rng(0)
        for i in range(4000):
            lba = int(rng.integers(ssd.num_sectors))
            ssd.submit("write", lba, 1, at_ns=ssd.now)
        lats = ssd.latencies_us("write")
        assert ssd.ftl.stats.gc_invocations > 0
        p50, p999 = np.percentile(lats, [50, 99.9])
        assert p999 > 5 * p50  # GC stalls dominate the tail

    def test_smart_consistent_with_counter_mode(self):
        """Same request stream -> identical SMART program counts."""
        config = tiny()
        timed = TimedSSD(config)
        counted = SimulatedSSD(config)
        rng = np.random.default_rng(7)
        for _ in range(1500):
            lba = int(rng.integers(counted.num_sectors))
            timed.submit("write", lba, 1, at_ns=timed.now)
            counted.write_sectors(lba, 1)
        timed.flush()
        counted.flush()
        assert timed.smart.host_program_pages == counted.smart.host_program_pages
        assert timed.smart.ftl_program_pages == counted.smart.ftl_program_pages

    def test_latencies_filter_by_kind(self):
        ssd = TimedSSD(tiny())
        ssd.submit("write", 0, 1, at_ns=0)
        ssd.submit("read", 0, 1, at_ns=ssd.now)
        assert len(ssd.latencies_us("write")) == 1
        assert len(ssd.latencies_us()) == 2


class TestBusTap:
    def test_tap_sees_only_its_channel(self):
        config = tiny()
        tap = BusTap(config.geometry, profile(config.timing_name), channel=0)
        ssd = TimedSSD(config, bus_tap=tap)
        for lpn in range(min(200, ssd.num_sectors)):
            ssd.submit("write", lpn, 1, at_ns=ssd.now)
        ssd.flush(at_ns=ssd.now)
        assert tap.trace.segments  # the probed channel saw traffic
        # All segments decode-sample cleanly.
        samples = render_samples(tap.trace, sample_period_ns=100,
                                 max_samples=50_000)
        assert len(samples["t"]) > 0

    def test_busy_windows_recorded(self):
        config = tiny()
        tap = BusTap(config.geometry, profile(config.timing_name), channel=0)
        ssd = TimedSSD(config, bus_tap=tap)
        for lpn in range(min(200, ssd.num_sectors)):
            ssd.submit("write", lpn, 1, at_ns=ssd.now)
        ssd.flush(at_ns=ssd.now)
        assert tap.trace.busy  # program busy periods visible on R/B#
