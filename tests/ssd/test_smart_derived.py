"""Derived SMART attributes: lifetime percentage, reported uncorrectable."""

import numpy as np

from repro.flash.errors import ReliabilityModel
from repro.ssd.device import SimulatedSSD
from repro.ssd.presets import tiny


class TestDerivedAttributes:
    def test_fresh_drive_full_lifetime(self):
        device = SimulatedSSD(tiny())
        snapshot = device.smart_snapshot()
        assert snapshot.percent_lifetime_remaining == 100
        assert "Percent_Lifetime_Remain" in device.smart_render()

    def test_lifetime_decreases_with_wear(self):
        config = tiny().with_changes(erase_limit=60)
        device = SimulatedSSD(config)
        rng = np.random.default_rng(0)
        for _ in range(12_000):
            device.write_sectors(int(rng.integers(device.num_sectors)), 1)
        device.flush()
        snapshot = device.smart_snapshot()
        assert snapshot.percent_lifetime_remaining < 100

    def test_reported_uncorrectable_synced(self):
        fragile = ReliabilityModel(base_rber=1e-7, rated_cycles=200,
                                   retention_rber_per_day=1e-3)
        config = tiny().with_changes(ops_per_day=50)
        device = SimulatedSSD(config)
        device.ftl.reliability = fragile
        for lpn in range(16):
            device.write_sectors(lpn, 1)
        device.flush()
        rng = np.random.default_rng(1)
        # Light churn: ages the cold data ~6 simulated days without the
        # GC churn that would implicitly rewrite (refresh) it.
        for i in range(300):
            device.write_sectors(16 + int(rng.integers(
                device.num_sectors - 16)), 1)
        device.flush()
        for lpn in range(16):
            device.read_sectors(lpn, 1)
        snapshot = device.smart_snapshot()
        assert snapshot.reported_uncorrectable > 0
        assert "Reported_Uncorrect" in device.smart_render()
