"""Property-based FTL invariants under randomized host sequences.

Seeded random write/trim/read workouts (no external property-testing
dependency) assert the structural invariants that define FTL sanity:

* mapping bijectivity — no two LPNs ever share a live physical sector,
  and every live data sector's reverse-map entry round-trips;
* read-after-write integrity — every written-and-flushed LPN is mapped
  to a programmed page and a host read reaches it;
* page accounting — valid + invalid + free pages add up to the
  geometry's total after every single GC cycle (checked from inside a
  trace sink hooked on ``gc_finished``).
"""

import numpy as np
import pytest

from repro.flash.nand import NO_LPN
from repro.obs.events import GcFinished
from repro.ssd.device import SimulatedSSD
from repro.ssd.ftl import META_P2L_BASE
from repro.ssd.mapping import UNMAPPED
from repro.ssd.presets import evo840_like, tiny

SEEDS = (1, 7, 23)


def assert_mapping_bijective(ftl) -> None:
    """l2p and p2l agree, and live data sectors are uniquely owned."""
    mapped = np.nonzero(ftl.mapping.l2p != UNMAPPED)[0]
    psas = ftl.mapping.l2p[mapped]
    # No two LPNs share a live physical sector.
    assert len(np.unique(psas)) == len(psas), "duplicate live PPN"
    # Forward map lands on valid sectors owned by the same LPN.
    assert ftl.sector_valid[psas].all(), "mapped LPN on invalid sector"
    assert np.array_equal(ftl.p2l[psas], mapped), "p2l does not round-trip"
    # Converse: every valid *data* sector is reachable from the map or
    # superseded by a pSLC-resident copy of the same LPN.
    valid_data = np.nonzero(ftl.sector_valid & (ftl.p2l >= 0))[0]
    for psa in valid_data:
        lpn = int(ftl.p2l[psa])
        if int(ftl.mapping.l2p[lpn]) != psa:
            assert ftl.pslc.lookup(lpn) is not None, (
                f"orphaned valid sector {psa} (lpn {lpn})"
            )


def assert_page_accounting(ftl) -> None:
    """valid_pages + invalid_pages + free_pages == total_pages, each
    side computed from an independent structure."""
    geometry = ftl.geometry
    spp = geometry.sectors_per_page
    page_state = ftl.nand.page_state
    free_pages = int(np.count_nonzero(page_state == 0))
    programmed_pages = int(np.count_nonzero(page_state == 1))
    assert free_pages + programmed_pages == geometry.total_pages
    # Pages carrying at least one valid sector, from the sector bitmap.
    valid_pages = int(np.count_nonzero(
        ftl.sector_valid.reshape(-1, spp).any(axis=1)
    ))
    invalid_pages = programmed_pages - valid_pages
    assert invalid_pages >= 0, "valid sectors exceed programmed pages"
    assert valid_pages + invalid_pages + free_pages == geometry.total_pages
    # Valid sectors only ever sit on programmed pages.
    valid_psas = np.nonzero(ftl.sector_valid)[0]
    assert np.all(page_state[valid_psas // spp] == 1)


class GcInvariantSink:
    """Checks page accounting after every completed GC cycle."""

    enabled = True

    def __init__(self, ftl) -> None:
        self.ftl = ftl
        self.gc_cycles = 0

    def emit(self, event) -> None:
        if isinstance(event, GcFinished):
            self.gc_cycles += 1
            assert_page_accounting(self.ftl)

    def close(self) -> None:
        pass


def workout(device, steps: int, seed: int, trim_fraction: float = 0.1):
    """Randomized write/trim/read sequence; returns the live shadow set."""
    rng = np.random.default_rng(seed)
    live: set[int] = set()
    n = device.num_sectors
    for _ in range(steps):
        roll = rng.random()
        lba = int(rng.integers(n))
        count = int(rng.integers(1, 5))
        count = min(count, n - lba)
        if roll < trim_fraction and live:
            device.trim_sectors(lba, count)
            live.difference_update(range(lba, lba + count))
        elif roll < 0.25:
            device.read_sectors(lba, count)
        else:
            device.write_sectors(lba, count)
            live.update(range(lba, lba + count))
    return live


class TestRandomizedInvariants:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_bijectivity_and_accounting_throughout(self, seed):
        device = SimulatedSSD(tiny())
        sink = GcInvariantSink(device.ftl)
        device.attach_sink(sink)
        rng = np.random.default_rng(seed + 1000)
        for phase in range(6):
            workout(device, 800, seed=seed * 100 + phase)
            if rng.random() < 0.5:
                device.flush()
            if rng.random() < 0.3:
                device.idle(max_blocks=4)
            device.ftl.check_invariants()
            assert_mapping_bijective(device.ftl)
            assert_page_accounting(device.ftl)
        # The workout must actually have exercised GC for the per-cycle
        # accounting assertions to mean anything.
        assert sink.gc_cycles > 0
        assert sink.gc_cycles == device.ftl.stats.gc_invocations

    @pytest.mark.parametrize("seed", SEEDS)
    def test_read_after_write_integrity(self, seed):
        device = SimulatedSSD(tiny())
        live = workout(device, 3000, seed=seed)
        device.flush()
        assert_mapping_bijective(device.ftl)
        ftl = device.ftl
        rng = np.random.default_rng(seed)
        sample = rng.choice(sorted(live), size=min(200, len(live)),
                            replace=False)
        for lpn in sample:
            lpn = int(lpn)
            psa = ftl.pslc.lookup(lpn)
            if psa is None:
                psa = int(ftl.mapping.l2p[lpn])
            assert psa != UNMAPPED, f"written lpn {lpn} unmapped after flush"
            assert ftl.sector_valid[psa], f"written lpn {lpn} on dead sector"
            ppn = psa // ftl.geometry.sectors_per_page
            assert ftl.nand.page_state[ppn] == 1, "mapped to unprogrammed page"
            # A host read must reach flash for this sector (no RAM copy
            # remains after the flush).
            ops = device.read_sectors(lpn, 1)
            assert any(op.kind.value == "read" for op in ops)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_trimmed_sectors_are_unmapped(self, seed):
        device = SimulatedSSD(tiny())
        n = device.num_sectors
        device.write_sectors(0, n // 2)
        device.flush()
        rng = np.random.default_rng(seed)
        trimmed = set()
        for _ in range(50):
            lba = int(rng.integers(n // 2))
            count = min(int(rng.integers(1, 8)), n // 2 - lba)
            device.trim_sectors(lba, count)
            trimmed.update(range(lba, lba + count))
        for lpn in sorted(trimmed):
            assert int(device.ftl.mapping.l2p[lpn]) == UNMAPPED
            assert device.ftl.pslc.lookup(lpn) is None
        device.ftl.check_invariants()
        assert_page_accounting(device.ftl)


class TestPslcDeviceInvariants:
    """The same properties on a pSLC-buffered device (evo840 model),
    where writes may live in the buffer instead of the main map."""

    def test_invariants_with_pslc_buffer(self):
        device = SimulatedSSD(evo840_like(scale=4))
        sink = GcInvariantSink(device.ftl)
        device.attach_sink(sink)
        live = workout(device, 2500, seed=5)
        device.flush()
        ftl = device.ftl
        ftl.check_invariants()
        assert_mapping_bijective(ftl)
        assert_page_accounting(ftl)
        # The pSLC index itself is injective and buffer-resident.
        psas = list(ftl.pslc.index.values())
        assert len(set(psas)) == len(psas)
        buffer_blocks = set(ftl.pslc.blocks)
        spb = ftl.geometry.sectors_per_page * ftl.geometry.pages_per_block
        for psa in psas:
            assert psa // spb in buffer_blocks
        # Every live LPN is reachable somewhere.
        rng = np.random.default_rng(9)
        sample = rng.choice(sorted(live), size=min(150, len(live)),
                            replace=False)
        for lpn in sample:
            lpn = int(lpn)
            in_buffer = ftl.pslc.lookup(lpn) is not None
            mapped = int(ftl.mapping.l2p[lpn]) != UNMAPPED
            assert in_buffer or mapped
