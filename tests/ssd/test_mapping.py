"""Mapping table: TP dirty tracking, checkpoints, chunk demand loading."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ssd.mapping import UNMAPPED, MappingTable


def make(num_lpns=1024, tp_lpns=64, dirty=4, sync=10_000, chunk=0, resident=2):
    return MappingTable(
        num_lpns=num_lpns,
        tp_lpns=tp_lpns,
        dirty_tp_limit=dirty,
        sync_interval=sync,
        chunk_lpns=chunk,
        resident_chunks=resident,
    )


class TestBasics:
    def test_initially_unmapped(self):
        table = make()
        psa, events = table.lookup(0)
        assert psa == UNMAPPED
        assert events.empty

    def test_update_then_lookup(self):
        table = make()
        old, _ = table.update(5, 100)
        assert old == UNMAPPED
        psa, _ = table.lookup(5)
        assert psa == 100

    def test_update_returns_old(self):
        table = make()
        table.update(5, 100)
        old, _ = table.update(5, 200)
        assert old == 100

    def test_trim_unmaps(self):
        table = make()
        table.update(5, 100)
        old, _ = table.trim(5)
        assert old == 100
        assert table.lookup(5)[0] == UNMAPPED

    def test_out_of_range(self):
        table = make(num_lpns=10)
        with pytest.raises(IndexError):
            table.lookup(10)
        with pytest.raises(IndexError):
            table.update(-1, 0)

    def test_mapped_count(self):
        table = make()
        table.update(0, 1)
        table.update(1, 2)
        table.update(0, 3)
        assert table.mapped_count() == 2

    def test_silent_update_no_dirty(self):
        table = make()
        table.silent_update(5, 100)
        assert table.dirty_tp_count == 0
        assert table.lookup(5)[0] == 100


class TestDirtyTracking:
    def test_updates_dirty_their_tp(self):
        table = make(tp_lpns=64)
        table.update(0, 1)
        assert table.is_dirty(0)
        table.update(64, 2)
        assert table.is_dirty(1)
        assert table.dirty_tp_count == 2

    def test_rewrite_same_tp_no_new_dirty(self):
        table = make()
        table.update(0, 1)
        table.update(1, 2)
        assert table.dirty_tp_count == 1

    def test_eviction_at_limit(self):
        table = make(tp_lpns=64, dirty=2)
        e1 = table.update(0, 1)[1]
        e2 = table.update(64, 2)[1]
        assert not e1.flush_tps and not e2.flush_tps
        e3 = table.update(128, 3)[1]
        assert e3.flush_tps == [0]  # LRU dirty TP flushed
        assert table.stats.eviction_flushes == 1

    def test_lru_refresh_on_redirty(self):
        table = make(tp_lpns=64, dirty=2)
        table.update(0, 1)     # TP0
        table.update(64, 2)    # TP1
        table.update(1, 3)     # TP0 again -> TP1 is now LRU
        events = table.update(128, 4)[1]
        assert events.flush_tps == [1]

    def test_checkpoint_flushes_all_dirty(self):
        table = make(tp_lpns=64, dirty=8)
        table.update(0, 1)
        table.update(64, 2)
        events = table.checkpoint()
        assert sorted(events.flush_tps) == [0, 1]
        assert table.dirty_tp_count == 0
        assert table.stats.checkpoint_flushes == 2

    def test_sync_interval_triggers_checkpoint(self):
        table = make(tp_lpns=64, dirty=8, sync=3)
        table.update(0, 1)
        table.update(1, 2)
        events = table.update(2, 3)[1]
        assert events.flush_tps == [0]
        assert table.dirty_tp_count == 0

    def test_note_flushed_records_location(self):
        table = make()
        table.update(0, 1)
        table.note_flushed(0, 777)
        assert table.tp_stored_ppn[0] == 777


class TestChunkResidency:
    def test_chunk_requires_tp_multiple(self):
        with pytest.raises(ValueError):
            make(chunk=100, tp_lpns=64)

    def test_first_access_loads_chunk(self):
        table = make(num_lpns=1024, tp_lpns=64, chunk=256)
        _, events = table.lookup(0)
        assert events.loaded_chunks == [0]
        assert table.stats.chunk_loads == 1

    def test_resident_chunk_not_reloaded(self):
        table = make(chunk=256)
        table.lookup(0)
        _, events = table.lookup(10)
        assert not events.loaded_chunks

    def test_lru_chunk_evicted(self):
        table = make(num_lpns=1024, tp_lpns=64, chunk=256, resident=2)
        table.lookup(0)    # chunk 0
        table.lookup(256)  # chunk 1
        table.lookup(512)  # chunk 2 -> chunk 0 evicted
        assert 0 not in table.resident_chunk_ids()
        _, events = table.lookup(0)  # reload
        assert events.loaded_chunks == [0]

    def test_eviction_flushes_chunk_dirty_tps(self):
        table = make(num_lpns=1024, tp_lpns=64, chunk=256, resident=2, dirty=64)
        table.update(0, 1)      # dirties TP0 in chunk 0
        table.lookup(256)       # chunk 1 resident
        _, events = table.lookup(512)  # evicts chunk 0
        assert 0 in events.flush_tps

    def test_chunk_load_reads_stored_tps(self):
        table = make(num_lpns=1024, tp_lpns=64, chunk=256, resident=2)
        table.update(0, 1)
        table.note_flushed(0, 555)
        table.lookup(256)
        table.lookup(512)  # evict chunk 0
        _, events = table.lookup(0)
        assert 555 in events.load_tp_ppns

    def test_unstored_tps_cost_no_reads(self):
        table = make(num_lpns=1024, tp_lpns=64, chunk=256, resident=1)
        _, events = table.lookup(0)
        assert events.load_tp_ppns == []

    def test_num_chunks(self):
        table = make(num_lpns=1000, tp_lpns=50, chunk=250)
        assert table.num_chunks == 4


@settings(max_examples=25)
@given(st.lists(st.tuples(st.integers(0, 1023), st.integers(0, 10_000)), max_size=200))
def test_lookup_matches_last_update_property(updates):
    table = make(num_lpns=1024, tp_lpns=64, dirty=3, sync=37)
    expected = {}
    for lpn, psa in updates:
        table.update(lpn, psa)
        expected[lpn] = psa
    for lpn, psa in expected.items():
        assert table.lookup(lpn)[0] == psa


@settings(max_examples=25)
@given(st.lists(st.integers(0, 1023), min_size=1, max_size=300))
def test_dirty_never_exceeds_limit_property(lpns):
    table = make(num_lpns=1024, tp_lpns=32, dirty=4, sync=10_000)
    for i, lpn in enumerate(lpns):
        table.update(lpn, i)
        assert table.dirty_tp_count <= 4
