"""Page allocation: scheme orderings, pools, retirement."""

import pytest

from repro.flash.geometry import Geometry
from repro.flash.nand import NandArray
from repro.ssd.allocation import OutOfSpace, PageAllocator

GEOM = Geometry(
    channels=2, chips_per_channel=1, dies_per_chip=2, planes_per_die=2,
    blocks_per_plane=4, pages_per_block=4, page_size=8192, sector_size=4096,
)


def make(scheme="CWDP", excluded=frozenset()):
    nand = NandArray(GEOM)
    return PageAllocator(GEOM, nand, scheme, excluded_blocks=excluded)


class TestSchemeOrdering:
    def test_cwdp_varies_channel_first(self):
        alloc = make("CWDP")
        planes = [alloc.plane_for_index(i) for i in range(4)]
        # Consecutive writes land on different channels (plane stride is
        # the per-channel plane count).
        channels = [p // (GEOM.chips_per_channel * GEOM.dies_per_chip
                          * GEOM.planes_per_die) for p in planes]
        assert channels[:2] == [0, 1]
        assert channels[0] != channels[1]

    def test_pdwc_varies_plane_first(self):
        alloc = make("PDWC")
        planes = [alloc.plane_for_index(i) for i in range(4)]
        # First two picks differ only in plane (same channel/die).
        assert planes[0] == 0
        assert planes[1] == 1  # plane 1 of die 0, channel 0

    def test_all_planes_covered(self):
        alloc = make("CWDP")
        total = GEOM.planes_total
        seen = {alloc.plane_for_index(i) for i in range(total)}
        assert seen == set(range(total))

    def test_pdwc_and_cwdp_orders_differ(self):
        a = make("CWDP")
        b = make("PDWC")
        order_a = [a.plane_for_index(i) for i in range(GEOM.planes_total)]
        order_b = [b.plane_for_index(i) for i in range(GEOM.planes_total)]
        assert order_a != order_b
        assert sorted(order_a) == sorted(order_b)

    def test_invalid_scheme_letter(self):
        with pytest.raises(ValueError):
            make("CWDX")

    def test_repeated_letter(self):
        with pytest.raises(ValueError):
            make("CCWD")


class TestAllocation:
    def test_pages_unique_until_full(self):
        alloc = make()
        seen = set()
        for _ in range(GEOM.total_pages):
            ppn = alloc.allocate_page("host")
            assert ppn not in seen
            seen.add(ppn)
        assert seen == set(range(GEOM.total_pages))

    def test_out_of_space(self):
        alloc = make()
        for _ in range(GEOM.total_pages):
            alloc.allocate_page("host")
        with pytest.raises(OutOfSpace):
            alloc.allocate_page("host")

    def test_pages_sequential_within_block(self):
        alloc = make("CWDP")
        by_block = {}
        for _ in range(GEOM.total_pages):
            ppn = alloc.allocate_page("host")
            block, page = divmod(ppn, GEOM.pages_per_block)
            by_block.setdefault(block, []).append(page)
        for pages in by_block.values():
            assert pages == sorted(pages)
            assert pages == list(range(len(pages)))

    def test_streams_use_distinct_blocks(self):
        alloc = make()
        a = alloc.allocate_page("host") // GEOM.pages_per_block
        b = alloc.allocate_page("gc") // GEOM.pages_per_block
        c = alloc.allocate_page("meta") // GEOM.pages_per_block
        assert len({a, b, c}) == 3

    def test_unknown_stream(self):
        with pytest.raises(ValueError):
            make().allocate_page("turbo")

    def test_excluded_blocks_never_allocated(self):
        excluded = frozenset({0, 1})
        alloc = make(excluded=excluded)
        blocks = set()
        for _ in range(GEOM.total_pages - len(excluded) * GEOM.pages_per_block):
            blocks.add(alloc.allocate_page("host") // GEOM.pages_per_block)
        assert not blocks & excluded


class TestLifecycle:
    def test_release_makes_block_reusable(self):
        alloc = make()
        first_block = alloc.allocate_page("host") // GEOM.pages_per_block
        for _ in range(GEOM.total_pages - 1):
            alloc.allocate_page("host")
        alloc.release_block(first_block)
        ppn = alloc.allocate_page("host")
        assert ppn // GEOM.pages_per_block == first_block

    def test_retired_block_not_reused(self):
        alloc = make()
        block = alloc.allocate_page("host") // GEOM.pages_per_block
        alloc.retire_block(block)
        alloc.release_block(block)  # release of retired block is ignored
        blocks = set()
        while True:
            try:
                blocks.add(alloc.allocate_page("host") // GEOM.pages_per_block)
            except OutOfSpace:
                break
        assert block not in blocks

    def test_active_blocks_reported(self):
        alloc = make()
        ppn = alloc.allocate_page("host")
        assert ppn // GEOM.pages_per_block in alloc.active_blocks()

    def test_free_block_counters(self):
        alloc = make()
        total = alloc.total_free_blocks()
        assert total == GEOM.total_blocks
        alloc.allocate_page("host")
        assert alloc.total_free_blocks() == total - 1

    def test_alloc_seq_monotone(self):
        alloc = make()
        b1 = alloc.allocate_page("host") // GEOM.pages_per_block
        # Exhaust block b1 so the next allocation opens a new block.
        for _ in range(GEOM.pages_per_block - 1):
            alloc.allocate_page("host")
        b2 = alloc.allocate_page("host") // GEOM.pages_per_block
        assert alloc.block_alloc_seq[b2] > alloc.block_alloc_seq[b1]

    def test_abandon_active(self):
        alloc = make()
        ppn = alloc.allocate_page("host")
        block = ppn // GEOM.pages_per_block
        plane = block // GEOM.blocks_per_plane
        alloc.abandon_active("host", plane)
        nxt = alloc.allocate_page("host")
        assert nxt // GEOM.pages_per_block != block
