"""Intra-SSD compression schemes (Fig 2 substrate)."""

import pytest

from repro.ssd.compression import (
    HEADER_BYTES,
    Chunk4,
    Compact,
    FixedSlot,
    NoCompression,
    ReBp32,
    make_scheme,
)

PAGE = 16384
SECTOR = 4096


class TestLogWriter:
    def test_none_scheme_four_sectors_per_page(self):
        scheme = NoCompression(PAGE, SECTOR)
        programs = sum(scheme.update(lpn, 1000) for lpn in range(8))
        assert programs == 2
        assert scheme.stats.bytes_appended == 8 * SECTOR

    def test_negative_append_rejected(self):
        scheme = Compact(PAGE, SECTOR)
        with pytest.raises(ValueError):
            scheme._log.append(-1)


class TestCompact:
    def test_appends_compressed_plus_header(self):
        scheme = Compact(PAGE, SECTOR)
        scheme.update(0, 1000)
        assert scheme.stats.bytes_appended == 1000 + HEADER_BYTES

    def test_incompressible_stored_raw(self):
        scheme = Compact(PAGE, SECTOR)
        scheme.update(0, 9000)  # "compressed" larger than raw
        assert scheme.stats.bytes_appended == SECTOR + HEADER_BYTES

    def test_many_compressible_sectors_few_pages(self):
        scheme = Compact(PAGE, SECTOR)
        for lpn in range(64):
            scheme.update(lpn, 1024)
        none = NoCompression(PAGE, SECTOR)
        for lpn in range(64):
            none.update(lpn, 1024)
        assert scheme.stats.page_programs < none.stats.page_programs


class TestFixedSlot:
    def test_rounds_to_slot(self):
        scheme = FixedSlot(PAGE, SECTOR, slot_bytes=2048)
        scheme.update(0, 100)
        assert scheme.stats.bytes_appended == 2048

    def test_wastes_more_than_compact(self):
        fixed = FixedSlot(PAGE, SECTOR)
        compact = Compact(PAGE, SECTOR)
        for lpn in range(32):
            fixed.update(lpn, 900)
            compact.update(lpn, 900)
        assert fixed.stats.bytes_appended > compact.stats.bytes_appended

    def test_slot_must_divide_page(self):
        with pytest.raises(ValueError):
            FixedSlot(PAGE, SECTOR, slot_bytes=3000)


class TestChunk4:
    def test_first_write_no_rmw(self):
        scheme = Chunk4(PAGE, SECTOR)
        scheme.update(0, 1000)
        assert scheme.stats.rmw_reads == 0

    def test_update_in_populated_chunk_rmw(self):
        scheme = Chunk4(PAGE, SECTOR)
        scheme.update(0, 1000)
        scheme.update(1, 1000)  # same chunk -> read-modify-rewrite
        assert scheme.stats.rmw_reads == 1

    def test_rewrite_costs_whole_chunk(self):
        scheme = Chunk4(PAGE, SECTOR, grouping_factor=1.0)
        for slot in range(4):
            scheme.update(slot, 1000)
        before = scheme.stats.bytes_appended
        scheme.update(0, 1000)  # rewrite whole 4-sector chunk
        appended = scheme.stats.bytes_appended - before
        assert appended == 4 * 1000 + HEADER_BYTES

    def test_partial_chunk_still_costs_whole_chunk(self):
        """Slots never written still hold device data that must be
        recompressed along with the update."""
        scheme = Chunk4(PAGE, SECTOR, grouping_factor=1.0)
        scheme.update(0, 1000)  # one slot of a 4-slot chunk
        assert scheme.stats.bytes_appended == 4 * 1000 + HEADER_BYTES

    def test_grouping_factor_shrinks(self):
        loose = Chunk4(PAGE, SECTOR, grouping_factor=1.0)
        tight = Chunk4(PAGE, SECTOR, grouping_factor=0.5)
        for scheme in (loose, tight):
            for slot in range(4):
                scheme.update(slot, 1000)
        assert tight.stats.bytes_appended < loose.stats.bytes_appended


class TestReBp32:
    def test_batches_of_32(self):
        scheme = ReBp32(PAGE, SECTOR)
        for lpn in range(31):
            assert scheme.update(lpn, 1000) == 0
        programs = scheme.update(31, 1000)
        assert programs >= 1

    def test_flush_partial_batch(self):
        scheme = ReBp32(PAGE, SECTOR)
        scheme.update(0, 1000)
        assert scheme.flush() >= 0
        assert scheme.stats.bytes_appended > 0
        assert scheme.flush() == 0

    def test_packs_tighter_than_compact(self):
        rebp = ReBp32(PAGE, SECTOR)
        compact = Compact(PAGE, SECTOR)
        for lpn in range(320):
            rebp.update(lpn, 1000)
            compact.update(lpn, 1000)
        rebp.flush()
        assert rebp.stats.bytes_appended <= compact.stats.bytes_appended


class TestFactory:
    @pytest.mark.parametrize("name", ["none", "fixed", "compact", "chunk4", "re-bp32"])
    def test_make_scheme(self, name):
        scheme = make_scheme(name)
        assert scheme.name == name

    def test_unknown_scheme(self):
        with pytest.raises(KeyError):
            make_scheme("zstd-magic")


class TestOrderingUnderCompressibleUpdates:
    def test_relative_cost_ordering(self):
        """The Fig 2 ordering for highly compressible random updates:
        re-bp32 <= compact < fixed, chunk4; chunk4 pays RMW."""
        import numpy as np
        rng = np.random.default_rng(0)
        schemes = {name: make_scheme(name) for name in
                   ("compact", "fixed", "chunk4", "re-bp32")}
        lpns = rng.integers(0, 256, size=2000)
        for lpn in lpns:
            for scheme in schemes.values():
                scheme.update(int(lpn), 1024)  # 4:1 compressible
        schemes["re-bp32"].flush()
        cost = {name: s.stats.bytes_appended for name, s in schemes.items()}
        assert cost["re-bp32"] <= cost["compact"]
        assert cost["compact"] < cost["fixed"]
        assert cost["compact"] < cost["chunk4"]
