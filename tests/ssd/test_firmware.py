"""Firmware substrate: ISA, obfuscation, builder, CPU, hackable device."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ssd.firmware.builder import (
    MMIO_BASE,
    MMIO_LBA,
    NUM_MAP_ARRAYS,
    ImageFormatError,
    build_firmware,
    memory_map_for,
    parse_image,
)
from repro.ssd.firmware.cpu import Cpu, CpuFault
from repro.ssd.firmware.device import ENTRY_UNMAPPED, HackableSSD
from repro.ssd.firmware.isa import (
    AsmError,
    Insn,
    Op,
    assemble,
    decode_word,
    disassemble,
    find_pointer_loads,
)
from repro.ssd.firmware.obfuscation import (
    deobfuscate,
    keystream,
    obfuscate,
    recover_keystream,
)
from repro.ssd.presets import evo840_like


class TestIsa:
    def test_assemble_disassemble_roundtrip(self):
        source = """
        start:
            movi r1, 0x1234
            movt r1, 0x2000
            ldr r2, [r1, 0x8]
            and r3, r2, 0x1
            cmp r3, 0x0
            beq start
            addx r2, r3
            xorx r2, r3
            str r2, [r1, 0xc]
            wfi
            halt
        """
        code = assemble(source)
        lines = disassemble(code)
        assert all(line.insn is not None for line in lines)
        texts = [line.insn.text() for line in lines]
        assert texts[0] == "movi r1, 0x1234"
        assert texts[1] == "movt r1, 0x2000"
        assert "beq" in texts[5]

    def test_labels_resolve_backward_and_forward(self):
        code = assemble("""
        a:  b c
        b:  nop
        c:  b a
        """)
        lines = disassemble(code)
        assert lines[0].insn.simm == 2  # a -> c
        assert lines[2].insn.simm == -2  # c -> a

    def test_unknown_label(self):
        with pytest.raises(AsmError):
            assemble("b nowhere")

    def test_duplicate_label(self):
        with pytest.raises(AsmError):
            assemble("x: nop\nx: nop")

    def test_bad_register(self):
        with pytest.raises(AsmError):
            assemble("movi r15, 1")

    def test_imm_range(self):
        with pytest.raises(AsmError):
            assemble("movi r1, 0x10000")

    def test_garbage_line(self):
        with pytest.raises(AsmError):
            assemble("frobnicate r1")

    def test_comments_ignored(self):
        assert len(assemble("nop ; a comment\n; whole line")) == 4

    def test_decode_invalid_opcode(self):
        assert decode_word(0xEE000000) is None

    def test_find_pointer_loads(self):
        code = assemble("""
            movi r6, 0x4000
            movt r6, 0x2000
            movi r7, 0x1
        """)
        found = find_pointer_loads(disassemble(code, base=0x100))
        assert found == [(0x100, 6, 0x20004000)]

    @given(st.integers(0, 0xFFFF), st.integers(0, 14), st.integers(0, 14))
    def test_encode_decode_property(self, imm, rd, rn):
        insn = Insn(Op.LDR, rd=rd, rn=rn, imm=imm)
        decoded = decode_word(insn.encode())
        assert decoded == insn


class TestCpu:
    def make_cpu(self, source, mem=None):
        mem = mem if mem is not None else {}
        code = assemble(source)

        def read(addr):
            return mem.get(addr, 0)

        def write(addr, value):
            mem[addr] = value

        return Cpu(code, 0, read, write), mem

    def test_mov_and_arith(self):
        cpu, _ = self.make_cpu("""
            movi r1, 0x10
            add r2, r1, 0x5
            sub r3, r2, 0x1
            lsl r4, r3, 0x2
            lsr r5, r4, 0x1
            halt
        """)
        cpu.run()
        assert cpu.regs[2] == 0x15
        assert cpu.regs[3] == 0x14
        assert cpu.regs[4] == 0x50
        assert cpu.regs[5] == 0x28

    def test_mem_access(self):
        cpu, mem = self.make_cpu("""
            movi r1, 0x100
            movi r2, 0x2a
            str r2, [r1, 0x4]
            ldr r3, [r1, 0x4]
            halt
        """)
        cpu.run()
        assert mem[0x104] == 0x2A
        assert cpu.regs[3] == 0x2A
        assert cpu.trace.stores == [(0x104, 0x2A)]

    def test_branching_loop(self):
        cpu, _ = self.make_cpu("""
            movi r1, 0x0
        loop:
            add r1, r1, 0x1
            cmp r1, 0x5
            bne loop
            halt
        """)
        cpu.run()
        assert cpu.regs[1] == 5

    def test_bl_ret(self):
        cpu, _ = self.make_cpu("""
            bl sub
            movi r2, 0x2
            halt
        sub:
            movi r1, 0x1
            ret
        """)
        cpu.run()
        assert cpu.regs[1] == 1 and cpu.regs[2] == 2

    def test_wfi_stops_and_resumes(self):
        cpu, _ = self.make_cpu("""
            movi r1, 0x1
            wfi
            movi r1, 0x2
            halt
        """)
        cpu.run()
        assert cpu.waiting and cpu.regs[1] == 1
        cpu.resume()
        cpu.run()
        assert cpu.regs[1] == 2

    def test_runaway_detected(self):
        cpu, _ = self.make_cpu("loop: b loop")
        with pytest.raises(CpuFault):
            cpu.run(max_steps=100)

    def test_pc_out_of_code(self):
        cpu, _ = self.make_cpu("nop")
        cpu.step()
        with pytest.raises(CpuFault):
            cpu.step()  # fell off the end


class TestObfuscation:
    # Shaped like a real image: one dominant pad byte (0xFF fill), some
    # zero padding, and structured content.
    PLAIN = (b"SSDFW840" + bytes(range(256)) * 8 + b"\x00" * 700
             + b"\xff" * 3200)

    def test_involution(self):
        cipher = obfuscate(self.PLAIN, seed=9, period=32)
        assert cipher != self.PLAIN
        assert obfuscate(cipher, seed=9, period=32) == self.PLAIN

    def test_keystream_deterministic(self):
        assert keystream(5, 16) == keystream(5, 16)
        assert keystream(5, 16) != keystream(6, 16)

    def test_attack_recovers_plain(self):
        for seed, period in ((0x5A, 64), (0x11, 32), (0xC3, 128)):
            cipher = obfuscate(self.PLAIN, seed=seed, period=period)
            plain, guess = deobfuscate(cipher)
            assert plain == self.PLAIN
            assert guess.period == period

    def test_attack_needs_length(self):
        with pytest.raises(ValueError):
            recover_keystream(b"short")

    def test_attack_requires_crib(self):
        with pytest.raises(ValueError):
            recover_keystream(b"x" * 4096, crib=b"")


class TestBuilder:
    MAP = memory_map_for(evo840_like(scale=4))

    def test_memory_map_shape(self):
        mm = self.MAP
        assert len(mm.map_array_bases) == NUM_MAP_ARRAYS
        strides = {b - a for a, b in zip(mm.map_array_bases,
                                         mm.map_array_bases[1:])}
        assert len(strides) == 1
        # pSLC index does not continue the array stride (guard gap).
        assert (mm.pslc_index_base - mm.map_array_bases[-1]) not in strides

    def test_entry_address_interleaving(self):
        mm = self.MAP
        assert mm.entry_address(0) == mm.map_array_bases[0]
        assert mm.entry_address(1) == mm.map_array_bases[1]
        assert mm.entry_address(8) == mm.map_array_bases[0] + 4
        assert mm.entry_address(17) == mm.map_array_bases[1] + 8

    def test_image_roundtrip(self):
        image = build_firmware(self.MAP)
        blob = image.to_bytes()
        sections = parse_image(blob)
        assert [s.name for s in sections] == [s.name for s in image.sections]
        for built, parsed in zip(image.sections, sections):
            assert parsed.data == built.data
            assert parsed.load_addr == built.load_addr

    def test_parse_rejects_garbage(self):
        with pytest.raises(ImageFormatError):
            parse_image(b"NOTANIMAGE" + b"\x00" * 100)
        with pytest.raises(ImageFormatError):
            parse_image(b"xx")

    def test_cores_reference_their_arrays(self):
        image = build_firmware(self.MAP)
        even = {self.MAP.map_array_bases[a] for a in (0, 2, 4, 6)}
        odd = {self.MAP.map_array_bases[a] for a in (1, 3, 5, 7)}
        core1_ptrs = {
            v for _, _, v in find_pointer_loads(
                disassemble(image.section("core1").data))
        }
        core2_ptrs = {
            v for _, _, v in find_pointer_loads(
                disassemble(image.section("core2").data))
        }
        assert even <= core1_ptrs and not (odd & core1_ptrs)
        assert odd <= core2_ptrs and not (even & core2_ptrs)

    def test_sata_core_routes_by_lsb(self):
        """Dynamic proof: execute core0 against a fake MMIO and observe
        the doorbell it rings for even and odd LBAs."""
        image = build_firmware(self.MAP)
        code = image.section("core0").data
        for lba, expected_core in ((10, 1), (11, 2)):
            mem = {MMIO_BASE + MMIO_LBA: lba}
            cpu = Cpu(code, image.section("core0").load_addr,
                      lambda a, m=mem: m.get(a, 0),
                      lambda a, v, m=mem: m.__setitem__(a, v))
            cpu.run()
            doorbell = [v for a, v in cpu.trace.stores if a >= MMIO_BASE]
            assert doorbell == [expected_core]

    def test_flash_core_looks_up_correct_entry(self):
        """Dynamic proof: core1's map lookup lands exactly on the
        documented entry address for its LBAs."""
        image = build_firmware(self.MAP)
        section = image.section("core1")
        for lba in (0, 2, 4, 6, 8, 24, 1000):
            mem = {MMIO_BASE + MMIO_LBA: lba}
            cpu = Cpu(section.data, section.load_addr,
                      lambda a, m=mem: m.get(a, 0),
                      lambda a, v, m=mem: m.__setitem__(a, v))
            cpu.run()
            map_loads = [
                addr for addr, _ in cpu.trace.loads
                if addr >= self.MAP.dram_base
                and addr < self.MAP.pslc_index_base
            ]
            assert map_loads == [self.MAP.entry_address(lba)]

    def test_flash_core_probes_hashed_bucket(self):
        image = build_firmware(self.MAP)
        section = image.section("core2")
        lba = 1001
        mem = {MMIO_BASE + MMIO_LBA: lba}
        cpu = Cpu(section.data, section.load_addr,
                  lambda a, m=mem: m.get(a, 0),
                  lambda a, v, m=mem: m.__setitem__(a, v))
        cpu.run()
        pslc_loads = [
            addr for addr, _ in cpu.trace.loads
            if self.MAP.pslc_index_base <= addr
            < self.MAP.pslc_index_base + self.MAP.pslc_index_bytes
        ]
        expected = self.MAP.pslc_bucket_address(self.MAP.pslc_bucket_of(lba))
        assert pslc_loads == [expected]


class TestHackableSSD:
    @pytest.fixture(scope="class")
    def dev(self):
        return HackableSSD(scale=4)

    def test_firmware_update_differs_from_plain(self, dev):
        assert dev.firmware_update_file != dev.firmware_plain
        assert len(dev.firmware_update_file) == len(dev.firmware_plain)

    def test_rom_readable(self, dev):
        # Address 0 holds core0's *loaded* code (the image header is a
        # file-format artifact, not part of the memory image).
        core0 = dev.firmware.section("core0")
        assert dev.read_mem(core0.load_addr, len(core0.data)) == core0.data

    def test_sram_read_write(self, dev):
        base = dev.memory_map.sram_base
        dev.write_mem(base + 16, b"\xde\xad\xbe\xef")
        assert dev.read_mem(base + 16, 4) == b"\xde\xad\xbe\xef"
        assert dev.read_mem(base + 20, 2) == b"\x00\x00"

    def test_code_region_not_writable(self, dev):
        with pytest.raises(PermissionError):
            dev.write_mem(0, b"\x00")

    def test_map_entry_tracks_ftl_state(self):
        dev = HackableSSD(scale=4)
        lba = 40
        dev.write_sectors(lba, 1)
        # Push it out of the staging buffer so it lands in the map.
        for i in range(4096):
            dev.write_sectors((1000 + i) % dev.num_sectors, 1)
        dev.flush()
        addr = dev.memory_map.entry_address(lba)
        value = dev.read_word(addr)
        assert value == int(dev.ssd.ftl.mapping.l2p[lba])

    def test_unmapped_entry_code(self):
        dev = HackableSSD(scale=4)
        dev.read_sectors(8, 1)  # make the chunk resident
        assert dev.read_word(dev.memory_map.entry_address(8)) == ENTRY_UNMAPPED

    def test_pc_idle_then_active(self):
        dev = HackableSSD(scale=4)
        idle = [dev.core_pc(c) for c in range(3)]
        for c, core in enumerate(dev.cores):
            assert idle[c] == core.wfi_addr
        dev.write_sectors(2, 1)  # even lba -> core 1
        assert dev.core_pc(0) != dev.cores[0].wfi_addr
        assert dev.core_pc(1) != dev.cores[1].wfi_addr
        assert dev.core_pc(2) == dev.cores[2].wfi_addr

    def test_halted_core_pc_frozen(self):
        dev = HackableSSD(scale=4)
        dev.halt_core(1)
        frozen = dev.core_pc(1)
        dev.write_sectors(2, 1)
        assert dev.core_pc(1) == frozen
        dev.resume_core(1)
        dev.write_sectors(2, 1)
        assert dev.core_pc(1) != frozen

    def test_mmio_reflects_last_request(self):
        dev = HackableSSD(scale=4)
        dev.write_sectors(123, 2)
        from repro.ssd.firmware.builder import MMIO_LEN
        assert dev.read_word(MMIO_BASE + MMIO_LBA) == 123
        assert dev.read_word(MMIO_BASE + MMIO_LEN) == 2

    def test_pslc_index_serialization(self):
        dev = HackableSSD(scale=2)
        lba = dev.num_sectors // 2
        for i in range(12):
            dev.write_sectors(lba + i, 1)
        mm = dev.memory_map
        blob = dev.read_mem(mm.pslc_index_base, mm.pslc_index_bytes)
        tags = struct.unpack(f"<{len(blob)//4}I", blob)[0::2]
        staged = set(dev.ssd.ftl.pslc.index)
        assert staged  # something is actually buffered
        assert staged <= {t for t in tags if t != 0xFFFFFFFF}
