"""GC victim selection policies."""

import numpy as np
import pytest

from repro.flash.geometry import Geometry
from repro.flash.nand import NandArray
from repro.ssd.allocation import PageAllocator
from repro.ssd.gc import VictimSelector

GEOM = Geometry(
    channels=1, chips_per_channel=1, dies_per_chip=1, planes_per_die=1,
    blocks_per_plane=8, pages_per_block=4, page_size=8192, sector_size=4096,
)


def build(policy="greedy", fill_blocks=(), valid=None, seed=1):
    nand = NandArray(GEOM)
    alloc = PageAllocator(GEOM, nand, "CWDP")
    valid_arr = np.zeros(GEOM.total_blocks, dtype=np.int32)
    for block in fill_blocks:
        for page in range(GEOM.pages_per_block):
            nand.program(block * GEOM.pages_per_block + page)
    if valid:
        for block, count in valid.items():
            valid_arr[block] = count
    selector = VictimSelector(policy, GEOM, nand, alloc, valid_arr, seed=seed)
    return selector, alloc, nand


class TestCandidates:
    def test_only_full_blocks(self):
        selector, _, nand = build(fill_blocks=[0, 1])
        nand.program(2 * GEOM.pages_per_block)  # block 2 partially written
        assert set(selector.candidates(0)) == {0, 1}

    def test_active_blocks_excluded(self):
        selector, alloc, nand = build(fill_blocks=[1, 2])
        ppn = alloc.allocate_page("host")  # opens block 0 as active
        block = ppn // GEOM.pages_per_block
        assert block not in selector.candidates(0)

    def test_retired_blocks_excluded(self):
        selector, alloc, _ = build(fill_blocks=[0, 1])
        alloc.retire_block(0)
        assert selector.candidates(0) == [1]

    def test_explicit_exclusion(self):
        selector, _, _ = build(fill_blocks=[0, 1])
        assert selector.candidates(0, exclude=[0]) == [1]

    def test_empty_pool_returns_none(self):
        selector, _, _ = build()
        assert selector.select_victim(0) is None


class TestGreedy:
    def test_picks_min_valid(self):
        selector, _, _ = build(
            "greedy", fill_blocks=[0, 1, 2], valid={0: 3, 1: 1, 2: 2}
        )
        assert selector.select_victim(0) == 1

    def test_tie_broken_deterministically(self):
        selector, _, _ = build("greedy", fill_blocks=[0, 1], valid={0: 1, 1: 1})
        assert selector.select_victim(0) == selector.select_victim(0)


class TestRandomizedGreedy:
    def test_sample_of_whole_pool_equals_greedy(self):
        selector, _, _ = build(
            "randomized_greedy", fill_blocks=[0, 1, 2], valid={0: 3, 1: 1, 2: 2}
        )
        selector.sample_size = 8  # >= pool
        assert selector.select_victim(0) == 1

    def test_small_sample_sometimes_misses_best(self):
        # With d=2 of 8 candidates, the global best is missed sometimes.
        picks = set()
        for seed in range(30):
            selector, _, _ = build(
                "randomized_greedy",
                fill_blocks=list(range(8)),
                valid={b: b + 1 for b in range(8)},  # block 0 is the best
                seed=seed,
            )
            selector.sample_size = 2
            picks.add(selector.select_victim(0))
        assert len(picks) > 1
        assert 0 in picks  # it does find the best sometimes


class TestOtherPolicies:
    def test_random_is_seed_deterministic(self):
        a, _, _ = build("random", fill_blocks=[0, 1, 2, 3], seed=9)
        b, _, _ = build("random", fill_blocks=[0, 1, 2, 3], seed=9)
        assert [a.select_victim(0) for _ in range(5)] == [
            b.select_victim(0) for _ in range(5)
        ]

    def test_fifo_picks_oldest_allocated(self):
        selector, alloc, nand = build("fifo")
        blocks = []
        for _ in range(2):  # allocate and fully program two blocks
            first = alloc.allocate_page("host")
            nand.program(first)
            for _ in range(GEOM.pages_per_block - 1):
                nand.program(alloc.allocate_page("host"))
            blocks.append(first // GEOM.pages_per_block)
        # Open a third block so the first two are no longer active.
        alloc.allocate_page("host")
        assert selector.select_victim(0) == blocks[0]

    def test_cost_benefit_prefers_old_empty(self):
        selector, alloc, nand = build("cost_benefit")
        blocks = []
        for _ in range(3):
            first = alloc.allocate_page("host")
            nand.program(first)
            for _ in range(GEOM.pages_per_block - 1):
                nand.program(alloc.allocate_page("host"))
            blocks.append(first // GEOM.pages_per_block)
        alloc.allocate_page("host")
        # Oldest block has few valid sectors; newest has many.
        selector.valid_sectors[blocks[0]] = 1
        selector.valid_sectors[blocks[1]] = 7
        selector.valid_sectors[blocks[2]] = 7
        assert selector.select_victim(0) == blocks[0]

    def test_unknown_policy_rejected(self):
        with pytest.raises(KeyError):
            build("psychic")
