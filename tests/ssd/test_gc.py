"""GC victim selection policies."""

import numpy as np
import pytest

from repro.flash.geometry import Geometry
from repro.flash.nand import NandArray
from repro.ssd.allocation import PageAllocator
from repro.ssd.gc import VictimSelector

GEOM = Geometry(
    channels=1, chips_per_channel=1, dies_per_chip=1, planes_per_die=1,
    blocks_per_plane=8, pages_per_block=4, page_size=8192, sector_size=4096,
)


def build(policy="greedy", fill_blocks=(), valid=None, seed=1):
    nand = NandArray(GEOM)
    alloc = PageAllocator(GEOM, nand, "CWDP")
    valid_arr = np.zeros(GEOM.total_blocks, dtype=np.int32)
    for block in fill_blocks:
        for page in range(GEOM.pages_per_block):
            nand.program(block * GEOM.pages_per_block + page)
    if valid:
        for block, count in valid.items():
            valid_arr[block] = count
    selector = VictimSelector(policy, GEOM, nand, alloc, valid_arr, seed=seed)
    return selector, alloc, nand


class TestCandidates:
    def test_only_full_blocks(self):
        selector, _, nand = build(fill_blocks=[0, 1])
        nand.program(2 * GEOM.pages_per_block)  # block 2 partially written
        assert set(selector.candidates(0)) == {0, 1}

    def test_active_blocks_excluded(self):
        selector, alloc, nand = build(fill_blocks=[1, 2])
        ppn = alloc.allocate_page("host")  # opens block 0 as active
        block = ppn // GEOM.pages_per_block
        assert block not in selector.candidates(0)

    def test_retired_blocks_excluded(self):
        selector, alloc, _ = build(fill_blocks=[0, 1])
        alloc.retire_block(0)
        assert selector.candidates(0) == [1]

    def test_explicit_exclusion(self):
        selector, _, _ = build(fill_blocks=[0, 1])
        assert selector.candidates(0, exclude=[0]) == [1]

    def test_empty_pool_returns_none(self):
        selector, _, _ = build()
        assert selector.select_victim(0) is None


class TestGreedy:
    def test_picks_min_valid(self):
        selector, _, _ = build(
            "greedy", fill_blocks=[0, 1, 2], valid={0: 3, 1: 1, 2: 2}
        )
        assert selector.select_victim(0) == 1

    def test_tie_broken_deterministically(self):
        selector, _, _ = build("greedy", fill_blocks=[0, 1], valid={0: 1, 1: 1})
        assert selector.select_victim(0) == selector.select_victim(0)


class TestRandomizedGreedy:
    def test_sample_of_whole_pool_equals_greedy(self):
        selector, _, _ = build(
            "randomized_greedy", fill_blocks=[0, 1, 2], valid={0: 3, 1: 1, 2: 2}
        )
        selector.sample_size = 8  # >= pool
        assert selector.select_victim(0) == 1

    def test_small_sample_sometimes_misses_best(self):
        # With d=2 of 8 candidates, the global best is missed sometimes.
        picks = set()
        for seed in range(30):
            selector, _, _ = build(
                "randomized_greedy",
                fill_blocks=list(range(8)),
                valid={b: b + 1 for b in range(8)},  # block 0 is the best
                seed=seed,
            )
            selector.sample_size = 2
            picks.add(selector.select_victim(0))
        assert len(picks) > 1
        assert 0 in picks  # it does find the best sometimes


class TestOtherPolicies:
    def test_random_is_seed_deterministic(self):
        a, _, _ = build("random", fill_blocks=[0, 1, 2, 3], seed=9)
        b, _, _ = build("random", fill_blocks=[0, 1, 2, 3], seed=9)
        assert [a.select_victim(0) for _ in range(5)] == [
            b.select_victim(0) for _ in range(5)
        ]

    def test_fifo_picks_oldest_allocated(self):
        selector, alloc, nand = build("fifo")
        blocks = []
        for _ in range(2):  # allocate and fully program two blocks
            first = alloc.allocate_page("host")
            nand.program(first)
            for _ in range(GEOM.pages_per_block - 1):
                nand.program(alloc.allocate_page("host"))
            blocks.append(first // GEOM.pages_per_block)
        # Open a third block so the first two are no longer active.
        alloc.allocate_page("host")
        assert selector.select_victim(0) == blocks[0]

    def test_cost_benefit_prefers_old_empty(self):
        selector, alloc, nand = build("cost_benefit")
        blocks = []
        for _ in range(3):
            first = alloc.allocate_page("host")
            nand.program(first)
            for _ in range(GEOM.pages_per_block - 1):
                nand.program(alloc.allocate_page("host"))
            blocks.append(first // GEOM.pages_per_block)
        alloc.allocate_page("host")
        # Oldest block has few valid sectors; newest has many.
        selector.valid_sectors[blocks[0]] = 1
        selector.valid_sectors[blocks[1]] = 7
        selector.valid_sectors[blocks[2]] = 7
        assert selector.select_victim(0) == blocks[0]

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="valid choices"):
            build("psychic")


class TestIncrementalIndex:
    """The sealed-block index must agree with a full plane scan at every
    point in a block's lifecycle."""

    def assert_matches_scan(self, selector, exclude=()):
        for plane in range(selector.geometry.planes_total):
            assert selector.candidates(plane, exclude) == \
                selector.candidates_scan(plane, exclude)

    def test_matches_scan_on_staged_blocks(self):
        selector, _, nand = build(fill_blocks=[0, 3, 5])
        nand.program(6 * GEOM.pages_per_block)  # partial block
        self.assert_matches_scan(selector)

    def test_matches_scan_through_allocation(self):
        selector, alloc, nand = build()
        for _ in range(3):  # fill three blocks through the allocator
            for _ in range(GEOM.pages_per_block):
                nand.program(alloc.allocate_page("host"))
        alloc.allocate_page("host")  # opens a fourth
        self.assert_matches_scan(selector)

    def test_matches_scan_after_release_and_retire(self):
        selector, alloc, nand = build(fill_blocks=[0, 1, 2, 3])
        alloc.retire_block(1)
        nand.erase(2)
        alloc.release_block(2)
        self.assert_matches_scan(selector)
        self.assert_matches_scan(selector, exclude=[0])

    def test_matches_scan_after_reallocation_cycle(self):
        """Erased, released, and re-filled blocks re-enter the pool."""
        selector, alloc, nand = build()
        first = alloc.allocate_page("host")
        nand.program(first)
        for _ in range(GEOM.pages_per_block - 1):
            nand.program(alloc.allocate_page("host"))
        block = first // GEOM.pages_per_block
        alloc.allocate_page("host")  # seal it by opening the next
        assert block in selector.candidates(0)
        nand.erase(block)
        alloc.release_block(block)
        assert block not in selector.candidates(0)
        self.assert_matches_scan(selector)

    def test_matches_scan_during_device_churn(self):
        """The decisive check: a real device under GC-heavy churn keeps
        the index and the scan identical at every victim selection."""
        import numpy as np

        from repro.ssd.device import SimulatedSSD
        from repro.ssd.presets import tiny

        device = SimulatedSSD(tiny().with_changes(gc_policy="greedy"))
        selector = device.ftl.selector
        rng = np.random.default_rng(7)
        checked = 0
        for i in range(3000):
            device.write_sectors(int(rng.integers(device.num_sectors)), 1)
            if i % 250 == 0:
                for plane in range(selector.geometry.planes_total):
                    assert selector.candidates(plane) == \
                        selector.candidates_scan(plane)
                    checked += 1
        device.flush()
        for plane in range(selector.geometry.planes_total):
            assert selector.candidates(plane) == \
                selector.candidates_scan(plane)
        assert checked > 0
