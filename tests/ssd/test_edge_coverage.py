"""Edge coverage: op records, compression properties, recovery with
chunked mapping, FS partial reads."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fs.ext4 import Ext4Model
from repro.fs.vfs import CounterBackend
from repro.ssd.compression import Compact, NoCompression, make_scheme
from repro.ssd.device import SimulatedSSD
from repro.ssd.ftl import Ftl
from repro.ssd.ops import FTL_REASONS, FlashOp, OpKind, OpReason
from repro.ssd.presets import evo840_like, tiny
from repro.ssd.recovery import recover_ftl


class TestOpRecords:
    def test_str_is_compact(self):
        op = FlashOp(OpKind.PROGRAM, 42, OpReason.GC, 4096)
        assert str(op) == "program[gc]@42(4096B)"

    def test_host_reason_not_ftl(self):
        assert OpReason.HOST not in FTL_REASONS
        assert OpReason.GC in FTL_REASONS
        assert OpReason.REFRESH in FTL_REASONS

    def test_ops_are_frozen(self):
        op = FlashOp(OpKind.READ, 1, OpReason.HOST)
        with pytest.raises(AttributeError):
            op.target = 2


class TestCompressionProperties:
    @settings(max_examples=25)
    @given(st.lists(st.tuples(st.integers(0, 100), st.integers(64, 4096)),
                    min_size=1, max_size=60))
    def test_compact_never_beats_payload(self, writes):
        """Bytes appended >= compressed payload (headers cost something),
        and page programs track appended bytes."""
        scheme = Compact(16384, 4096)
        payload = 0
        for lpn, size in writes:
            scheme.update(lpn, size)
            payload += min(size, 4096)
        assert scheme.stats.bytes_appended >= payload
        assert scheme.stats.page_programs == scheme.stats.bytes_appended // 16384

    @settings(max_examples=25)
    @given(st.lists(st.integers(0, 50), min_size=32, max_size=96),
           st.integers(256, 2048))
    def test_better_compression_never_costs_more(self, lpns, size):
        tight = make_scheme("compact")
        loose = make_scheme("compact")
        for lpn in lpns:
            tight.update(lpn, size // 2)
            loose.update(lpn, size)
        assert tight.stats.bytes_appended <= loose.stats.bytes_appended

    def test_none_scheme_ignores_compressibility(self):
        a = NoCompression(16384, 4096)
        b = NoCompression(16384, 4096)
        for lpn in range(16):
            a.update(lpn, 100)
            b.update(lpn, 4096)
        assert a.stats.bytes_appended == b.stats.bytes_appended


class TestRecoveryWithChunkedMapping:
    def test_recovery_on_demand_loaded_map(self):
        """The 840-EVO-style chunked map also rebuilds from OOB."""
        config = evo840_like(scale=4)
        ftl = Ftl(config)
        rng = np.random.default_rng(9)
        for _ in range(6000):
            ftl.write(int(rng.integers(ftl.num_lpns)))
        ftl.flush()
        def effective(f, lpn):
            """A sector's authoritative location: pSLC first, then map."""
            psa = f.pslc.lookup(lpn)
            if psa is not None:
                return psa
            psa = int(f.mapping.l2p[lpn])
            return psa if psa >= 0 else None

        expected = {
            lpn: effective(ftl, lpn)
            for lpn in range(ftl.num_lpns)
            if effective(ftl, lpn) is not None
        }
        recovered, report = recover_ftl(config, ftl.nand)
        for lpn, psa in list(expected.items())[:2000]:
            assert effective(recovered, lpn) == psa
        # Chunk residency restarts cold: nothing resident until used.
        assert recovered.mapping.resident_chunk_ids() == []

    def test_recovered_chunked_device_operational(self):
        config = evo840_like(scale=4)
        ftl = Ftl(config)
        for lpn in range(0, 4000, 4):
            ftl.write(lpn, 2)
        ftl.flush()
        recovered, _ = recover_ftl(config, ftl.nand)
        recovered.write(100, 4)
        recovered.flush()
        recovered.read(100, 4)
        recovered.check_invariants()


class TestFsPartialReads:
    def test_read_partial_ranges(self):
        device = SimulatedSSD(tiny())
        fs = Ext4Model(CounterBackend(device), journal_sectors=32,
                       metadata_sectors=32)
        fs.create("a", 10)
        before = device.smart.host_sectors_read
        fs.read("a", offset=3, sectors=4)
        assert device.smart.host_sectors_read == before + 4

    def test_read_across_fragmented_extents(self):
        device = SimulatedSSD(tiny())
        fs = Ext4Model(CounterBackend(device), journal_sectors=32,
                       metadata_sectors=32)
        # Fragment free space, then allocate a file across holes.
        for i in range(8):
            fs.create(f"f{i}", 6)
        for i in range(0, 8, 2):
            fs.delete(f"f{i}")
        fs.create("frag", 20)
        assert len(fs.files["frag"].extents) > 1
        before = device.smart.host_sectors_read
        fs.read("frag", offset=5, sectors=10)
        assert device.smart.host_sectors_read == before + 10

    def test_read_out_of_range(self):
        from repro.fs.vfs import FsError
        device = SimulatedSSD(tiny())
        fs = Ext4Model(CounterBackend(device), journal_sectors=32,
                       metadata_sectors=32)
        fs.create("a", 4)
        with pytest.raises(FsError):
            fs.read("a", offset=2, sectors=5)
