"""Device presets resolve cleanly through the policy registries."""

import pytest

from repro.ssd.policy import REGISTRIES
from repro.ssd.presets import PRESETS

KNOB_FIELDS = {
    "gc_policy": "gc_policy",
    "allocation_scheme": "allocation_scheme",
    "cache_designation": "cache_designation",
    "cache_admission": "cache_admission",
    "cache_eviction": "cache_eviction",
    "wear_policy": "wear_policy",
}


class TestPresetPolicyResolution:
    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_every_knob_is_registered(self, name):
        """Each preset's policy strings exist in the registries — a
        preset can never name a policy the engine cannot build."""
        config = PRESETS[name](scale=2)
        for knob, field in KNOB_FIELDS.items():
            value = getattr(config, field)
            registry = REGISTRIES[knob]
            assert value in registry, (name, knob, value)
            # The factory actually builds the policy object.
            policy = registry.resolve(value)()
            assert policy.name == value

    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_preset_devices_construct(self, name):
        """Presets build a working FTL end to end (policies included)."""
        from repro.ssd.ftl import Ftl

        ftl = Ftl(PRESETS[name](scale=4))
        assert ftl.selector.policy == PRESETS[name](scale=4).gc_policy

    def test_unknown_policy_in_derived_config_fails_clearly(self):
        config = PRESETS["tiny"]()
        with pytest.raises(ValueError) as excinfo:
            config.with_changes(gc_policy="quantum")
        message = str(excinfo.value)
        assert "unknown gc_policy 'quantum'" in message
        assert "greedy" in message  # valid choices are listed

    def test_unknown_eviction_fails_clearly(self):
        config = PRESETS["tiny"]()
        with pytest.raises(ValueError, match="valid choices"):
            config.with_changes(cache_eviction="mru")
