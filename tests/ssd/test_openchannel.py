"""Open-channel device and host-side FTL."""

import numpy as np
import pytest

from repro.flash.nand import FlashViolation
from repro.ssd.openchannel import HostFtl, OpenChannelSSD
from repro.ssd.presets import mqsim_baseline

CFG = mqsim_baseline(scale=4)


def make_host(**kwargs):
    device = OpenChannelSSD(CFG.geometry, CFG.timing_name)
    kwargs.setdefault("op_ratio", 0.15)
    return HostFtl(device, **kwargs), device


def churn(host, writes, region_fraction=0.8, seed=0):
    rng = np.random.default_rng(seed)
    span = int(host.num_lpns * region_fraction)
    now = host.device.now
    for _ in range(writes):
        now = max(now, host.write(int(rng.integers(span)), now))
    return now


class TestOpenChannelDevice:
    def test_raw_program_and_read(self):
        device = OpenChannelSSD(CFG.geometry, CFG.timing_name)
        completion = device.program_page(0, at_ns=0, oob=(7,))
        assert completion.complete_ns >= device.timing.program_ns
        read = device.read_page(0, at_ns=completion.complete_ns)
        assert read.complete_ns > completion.complete_ns
        assert device.nand.page_lpn[0] == 7

    def test_raw_ops_respect_nand_rules(self):
        device = OpenChannelSSD(CFG.geometry, CFG.timing_name)
        device.program_page(0, at_ns=0)
        with pytest.raises(FlashViolation):
            device.program_page(0, at_ns=0)  # erase-before-write is exposed
        device.erase_block(0, at_ns=0)
        device.program_page(0, at_ns=0)

    def test_die_serialization(self):
        device = OpenChannelSSD(CFG.geometry, CFG.timing_name)
        a = device.program_page(0, at_ns=0)
        b = device.program_page(1, at_ns=0)  # same block -> same die
        assert b.start_ns >= a.complete_ns


class TestHostFtl:
    def test_writes_readable(self):
        host, _ = make_host()
        now = 0
        for lpn in range(32):
            now = max(now, host.write(lpn, now))
        mapped = [lpn for lpn in range(32) if int(host.l2p[lpn]) >= 0]
        # Whole pages are programmed; at most one partial page pending.
        assert len(mapped) >= 32 - CFG.geometry.sectors_per_page
        for lpn in mapped:
            assert host.read(lpn, now) > now

    def test_striping_spreads_dies(self):
        host, device = make_host()
        now = 0
        for lpn in range(CFG.geometry.sectors_per_page * 16):
            now = max(now, host.write(lpn, now))
        programmed = np.nonzero(device.nand.page_state == 1)[0]
        dies = {CFG.geometry.die_of_ppn(int(p)) for p in programmed}
        assert len(dies) == CFG.geometry.dies_total

    def test_gc_reclaims_and_data_survives(self):
        host, _ = make_host(gc_step_pages=2)
        now = churn(host, 40_000, seed=1)
        assert host.stats.erases > 0
        assert host.stats.gc_migrated_pages > 0
        # Mapping stays coherent under reclaim.
        spp = CFG.geometry.sectors_per_page
        for lpn in range(host.num_lpns):
            psa = int(host.l2p[lpn])
            if psa >= 0:
                assert int(host.p2l[psa]) == lpn

    def test_bounded_gc_bounds_the_tail(self):
        """The transparency dividend: worst-case write stall stays within
        a couple of flash operations, GC or not."""
        host, _ = make_host(gc_step_pages=1)
        now = churn(host, 30_000, seed=2)
        lat = []
        rng = np.random.default_rng(3)
        span = int(host.num_lpns * 0.8)
        for _ in range(8000):
            done = host.write(int(rng.integers(span)), now)
            lat.append(done - now)
            now = max(now, done)
        worst_us = max(lat) / 1000
        # One host program + one bounded GC slice (read+program+erase).
        budget_us = (3 * host.device.timing.program_ns
                     + host.device.timing.erase_ns) / 1000
        assert worst_us <= budget_us

    def test_lpn_range_checked(self):
        host, _ = make_host()
        with pytest.raises(ValueError):
            host.write(host.num_lpns, 0)

    def test_read_unmapped_is_instant(self):
        host, _ = make_host()
        assert host.read(5, at_ns=100) == 100
