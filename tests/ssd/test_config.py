"""SsdConfig validation and derived capacity."""

import pytest

from repro.flash.geometry import Geometry
from repro.ssd.config import SsdConfig
from repro.ssd.presets import PRESETS


class TestValidation:
    def test_defaults_valid(self):
        SsdConfig()

    def test_bad_timing(self):
        with pytest.raises(ValueError):
            SsdConfig(timing_name="qlcish")

    def test_bad_gc_policy(self):
        with pytest.raises(ValueError):
            SsdConfig(gc_policy="psychic")

    def test_bad_cache_designation(self):
        with pytest.raises(ValueError):
            SsdConfig(cache_designation="both")

    def test_bad_allocation_scheme(self):
        with pytest.raises(ValueError):
            SsdConfig(allocation_scheme="XYZW")

    def test_bad_op_ratio(self):
        with pytest.raises(ValueError):
            SsdConfig(op_ratio=0.6)
        with pytest.raises(ValueError):
            SsdConfig(op_ratio=-0.1)

    def test_watermark_ordering(self):
        with pytest.raises(ValueError):
            SsdConfig(gc_low_water_blocks=4, gc_high_water_blocks=2)

    def test_rain_stripe_one_invalid(self):
        with pytest.raises(ValueError):
            SsdConfig(rain_stripe=1)

    def test_rain_stripe_zero_ok(self):
        assert SsdConfig(rain_stripe=0).rain_stripe == 0

    def test_negative_pslc(self):
        with pytest.raises(ValueError):
            SsdConfig(pslc_blocks=-1)


class TestCapacity:
    def test_logical_smaller_than_physical(self):
        config = SsdConfig(op_ratio=0.1)
        assert config.logical_bytes < config.geometry.capacity_bytes

    def test_op_ratio_effect(self):
        lean = SsdConfig(op_ratio=0.05)
        fat = SsdConfig(op_ratio=0.25)
        assert fat.logical_sectors < lean.logical_sectors

    def test_pslc_reserve_reduces_logical(self):
        base = SsdConfig(pslc_blocks=0)
        buffered = SsdConfig(pslc_blocks=4)
        assert buffered.logical_sectors < base.logical_sectors
        assert buffered.pslc_reserved_bytes == 4 * base.geometry.block_bytes

    def test_with_changes(self):
        base = SsdConfig()
        changed = base.with_changes(gc_policy="random")
        assert changed.gc_policy == "random"
        assert base.gc_policy == "greedy"
        assert changed.geometry == base.geometry


class TestPresets:
    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_preset_constructs(self, name):
        config = PRESETS[name]()
        assert config.logical_sectors > 0

    def test_mx500_page_and_stripe(self):
        config = PRESETS["mx500"]()
        assert config.geometry.page_size == 32768
        assert config.rain_stripe == 15

    def test_evo840_chunk_shape(self):
        config = PRESETS["evo840"]()
        # 117.5 MB of logical space per mapping chunk.
        chunk_bytes = config.mapping_chunk_lpns * config.geometry.sector_size
        assert chunk_bytes == int(117.5 * 2**20)
        assert config.mapping_chunk_lpns % config.mapping_tp_lpns == 0
        assert config.pslc_blocks > 0

    def test_scaled_presets_smaller(self):
        for name in ("mx500", "evo840", "mqsim"):
            full = PRESETS[name]()
            small = PRESETS[name](scale=4)
            assert small.geometry.total_pages <= full.geometry.total_pages
