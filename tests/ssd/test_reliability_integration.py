"""Retention/ECC on the read path, and refresh as its cure."""

import pytest

from repro.flash.errors import ReliabilityModel
from repro.ssd.ftl import Ftl
from repro.ssd.presets import tiny

#: a deliberately fragile flash: data rots after ~5 simulated days.
FRAGILE = ReliabilityModel(
    base_rber=1e-7,
    rated_cycles=200,
    retention_rber_per_day=1e-3,
    ecc_correctable=40,
)


def aged_ftl(refresh_after_ops=0, ops_per_day=100):
    config = tiny().with_changes(
        ops_per_day=ops_per_day,
        refresh_after_ops=refresh_after_ops,
    )
    ftl = Ftl(config, reliability=FRAGILE)
    # Cold data written once...
    for lpn in range(32):
        ftl.write(lpn)
    ftl.flush()
    # ...then the device ages under unrelated churn (10 simulated days).
    for i in range(1000):
        ftl.write(32 + i % (ftl.num_lpns - 32))
    ftl.flush()
    return ftl


class TestRetentionReads:
    def test_modeling_disabled_by_default(self):
        ftl = aged_ftl(ops_per_day=0)
        for lpn in range(32):
            ftl.read(lpn)
        assert ftl.stats.uncorrectable_reads == 0

    def test_aged_cold_data_becomes_uncorrectable(self):
        ftl = aged_ftl()
        for lpn in range(32):
            ftl.read(lpn)
        assert ftl.stats.uncorrectable_reads > 0

    def test_fresh_data_reads_clean(self):
        ftl = aged_ftl()
        before = ftl.stats.uncorrectable_reads
        ftl.write(40)
        ftl.flush()
        ftl.read(40)
        assert ftl.stats.uncorrectable_reads == before

    def test_refresh_cures_retention(self):
        """Flash correct-and-refresh: periodic rewrites keep old data
        inside the ECC budget."""
        ftl = aged_ftl(refresh_after_ops=300)
        for _ in range(20):
            ftl.idle_maintenance(max_blocks=8)
        assert ftl.stats.refreshed_blocks > 0
        for lpn in range(32):
            ftl.read(lpn)
        assert ftl.stats.uncorrectable_reads == 0

    def test_reads_not_fatal(self):
        """Uncorrectable reads are counted, not raised — black-box
        observers only see the SMART-style counter move."""
        ftl = aged_ftl()
        ops = ftl.read(0)
        assert len(ops) == 1  # the read still happens
