"""FTL behaviour: write/read/trim paths, GC, RAIN, pSLC, failures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash.errors import FailureInjector
from repro.flash.geometry import Geometry
from repro.ssd.config import SsdConfig
from repro.ssd.ftl import Ftl
from repro.ssd.ops import OpKind, OpReason
from repro.ssd.presets import tiny


def small_config(**overrides):
    base = tiny()
    return base.with_changes(**overrides) if overrides else base


def fill_randomly(ftl, writes, seed=0):
    rng = np.random.default_rng(seed)
    for _ in range(writes):
        ftl.write(int(rng.integers(ftl.num_lpns)))
    ftl.flush()


class TestWritePath:
    def test_cached_write_emits_no_ops(self):
        ftl = Ftl(small_config())
        ops = ftl.write(0)
        assert ops == []  # absorbed by the cache

    def test_flush_programs_data(self):
        ftl = Ftl(small_config())
        ftl.write(0)
        ops = ftl.flush()
        programs = [op for op in ops if op.kind is OpKind.PROGRAM]
        assert len(programs) >= 1
        assert programs[0].reason is OpReason.HOST

    def test_write_beyond_capacity_rejected(self):
        ftl = Ftl(small_config())
        with pytest.raises(ValueError):
            ftl.write(ftl.num_lpns)
        with pytest.raises(ValueError):
            ftl.write(ftl.num_lpns - 1, 2)
        with pytest.raises(ValueError):
            ftl.write(0, 0)

    def test_overwrite_invalidates_old_copy(self):
        ftl = Ftl(small_config())
        ftl.write(5)
        ftl.flush()
        psa1 = int(ftl.mapping.l2p[5])
        ftl.write(5)
        ftl.flush()
        psa2 = int(ftl.mapping.l2p[5])
        assert psa1 != psa2
        assert not ftl.sector_valid[psa1]
        assert ftl.sector_valid[psa2]

    def test_sectors_packed_into_pages(self):
        config = small_config()
        ftl = Ftl(config)
        spp = config.geometry.sectors_per_page
        ftl.write(0, spp * 4)
        ops = ftl.flush()
        host_programs = [
            op for op in ops
            if op.kind is OpKind.PROGRAM and op.reason is OpReason.HOST
        ]
        # Perfect packing: one program per sectors_per_page sectors
        # (metadata programs are counted separately).
        assert len(host_programs) == 4

    def test_invariants_after_churn(self):
        ftl = Ftl(small_config())
        fill_randomly(ftl, 4000)
        ftl.check_invariants()

    def test_gc_triggered_under_pressure(self):
        ftl = Ftl(small_config())
        fill_randomly(ftl, 4000)
        assert ftl.stats.gc_invocations > 0
        assert ftl.stats.gc_migrated_sectors > 0

    def test_data_readable_after_gc(self):
        ftl = Ftl(small_config())
        fill_randomly(ftl, 4000)
        # Every mapped LPN resolves to a valid sector that maps back.
        mapped = np.nonzero(ftl.mapping.l2p != -1)[0]
        assert len(mapped) > 0
        for lpn in mapped:
            psa = int(ftl.mapping.l2p[lpn])
            assert int(ftl.p2l[psa]) == lpn


class TestReadPath:
    def test_unwritten_read_no_flash_op(self):
        ftl = Ftl(small_config())
        assert ftl.read(0) == []

    def test_cache_hit_read_no_flash_op(self):
        ftl = Ftl(small_config())
        ftl.write(0)
        assert ftl.read(0) == []

    def test_flash_read_after_flush(self):
        ftl = Ftl(small_config())
        ftl.write(0)
        ftl.flush()
        ops = ftl.read(0)
        assert len(ops) == 1
        assert ops[0].kind is OpKind.READ
        spp = ftl.geometry.sectors_per_page
        assert ops[0].target == int(ftl.mapping.l2p[0]) // spp

    def test_read_range_validation(self):
        ftl = Ftl(small_config())
        with pytest.raises(ValueError):
            ftl.read(-1)


class TestTrim:
    def test_trim_unmaps_and_invalidates(self):
        ftl = Ftl(small_config())
        ftl.write(3)
        ftl.flush()
        psa = int(ftl.mapping.l2p[3])
        ftl.trim(3)
        assert int(ftl.mapping.l2p[3]) == -1
        assert not ftl.sector_valid[psa]
        assert ftl.read(3) == []

    def test_trim_pending_cache_write(self):
        ftl = Ftl(small_config())
        ftl.write(3)
        ftl.trim(3)
        ops = ftl.flush()
        host_programs = [
            op for op in ops
            if op.kind is OpKind.PROGRAM and op.reason is OpReason.HOST
        ]
        assert host_programs == []

    def test_trim_reduces_gc_work(self):
        config = small_config()
        with_trim = Ftl(config)
        without_trim = Ftl(config)
        rng = np.random.default_rng(1)
        lbas = [int(rng.integers(config.logical_sectors)) for _ in range(3000)]
        for i, lba in enumerate(lbas):
            with_trim.write(lba)
            without_trim.write(lba)
            if i % 4 == 3:
                with_trim.trim(lbas[i - 1])
        with_trim.flush()
        without_trim.flush()
        assert (
            with_trim.stats.gc_migrated_sectors
            <= without_trim.stats.gc_migrated_sectors
        )


class TestMetadataPath:
    def test_meta_programs_emitted(self):
        config = small_config(mapping_sync_interval=64)
        ftl = Ftl(config)
        metas = 0
        for lpn in range(200):
            for op in ftl.write(lpn % ftl.num_lpns):
                if op.reason is OpReason.META:
                    metas += 1
        assert metas > 0

    def test_checkpoint_persists_dirty_tps(self):
        ftl = Ftl(small_config())
        ftl.write(0)
        ftl.flush()
        assert ftl.mapping.dirty_tp_count > 0
        ops = ftl.checkpoint()
        assert any(op.reason is OpReason.META for op in ops)
        assert ftl.mapping.dirty_tp_count == 0

    def test_tp_reflush_invalidates_old_meta_page(self):
        ftl = Ftl(small_config())
        ftl.write(0)
        ftl.flush()
        ftl.checkpoint()
        ppn1 = int(ftl.mapping.tp_stored_ppn[0])
        ftl.write(1)
        ftl.flush()
        ftl.checkpoint()
        ppn2 = int(ftl.mapping.tp_stored_ppn[0])
        assert ppn1 != ppn2
        slot0 = ppn1 * ftl.geometry.sectors_per_page
        assert not ftl.sector_valid[slot0]


class TestRainIntegration:
    def test_parity_pages_written(self):
        config = small_config(rain_stripe=4)
        ftl = Ftl(config)
        parity = 0
        for lpn in range(100):
            ftl.write(lpn % ftl.num_lpns)
        for op in ftl.flush():
            if op.reason is OpReason.PARITY:
                parity += 1
        assert ftl.rain.parity_pages > 0

    def test_parity_never_valid(self):
        config = small_config(rain_stripe=2)
        ftl = Ftl(config)
        for lpn in range(min(200, ftl.num_lpns)):
            ftl.write(lpn)
        ftl.flush()
        ftl.check_invariants()
        # All valid sectors belong to host data or metadata, never parity:
        # parity pages carry no p2l entry, so validity implies p2l != -1.
        valid = np.nonzero(ftl.sector_valid)[0]
        assert np.all(ftl.p2l[valid] != -1)


class TestPslcIntegration:
    def test_writes_land_in_pslc_first(self):
        config = small_config(pslc_blocks=4)
        ftl = Ftl(config)
        ftl.write(0)
        ftl.flush()
        assert ftl.pslc.lookup(0) is not None
        assert ftl.stats.pslc_staged_sectors > 0

    def test_read_served_from_pslc(self):
        config = small_config(pslc_blocks=4)
        ftl = Ftl(config)
        ftl.write(0)
        ftl.flush()
        ops = ftl.read(0)
        assert len(ops) == 1
        spp = config.geometry.sectors_per_page
        pslc_psa = ftl.pslc.lookup(0)
        assert ops[0].target == pslc_psa // spp

    def test_drain_moves_data_to_main_area(self):
        config = small_config(pslc_blocks=2, pslc_drain_threshold=0.5)
        ftl = Ftl(config)
        for lpn in range(min(300, ftl.num_lpns)):
            ftl.write(lpn)
        ftl.flush()
        assert ftl.stats.pslc_drains > 0
        drained = [
            lpn for lpn in range(min(300, ftl.num_lpns))
            if ftl.pslc.lookup(lpn) is None and int(ftl.mapping.l2p[lpn]) != -1
        ]
        assert drained
        ftl.check_invariants()

    def test_invariants_with_pslc_churn(self):
        config = small_config(pslc_blocks=4)
        ftl = Ftl(config)
        fill_randomly(ftl, 3000, seed=3)
        ftl.check_invariants()


class TestFailureHandling:
    def test_program_failure_retires_block(self):
        injector = FailureInjector()
        ftl = Ftl(small_config(), injector=injector)
        ftl.write(0)
        # Force the next allocation's program to fail.
        injector.program_fail_prob = 1.0
        with pytest.raises(Exception):
            # With every program failing the FTL keeps retiring blocks
            # until it runs out -- ensure it fails loudly, not silently.
            for lpn in range(2000):
                ftl.write(lpn % ftl.num_lpns)
                ftl.flush()

    def test_single_program_failure_recovers(self):
        injector = FailureInjector()
        ftl = Ftl(small_config(), injector=injector)
        ftl.write(0)
        ops = ftl.flush()
        target = [op for op in ops if op.kind is OpKind.PROGRAM][0].target
        # Fail one specific upcoming program: pick the next page the host
        # stream will use.
        before_retired = ftl.stats.blocks_retired
        injector.program_fail_prob = 0.0
        # Write enough to allocate more pages, forcing one failure.
        next_ppn = None
        for candidate in range(ftl.geometry.total_pages):
            if ftl.nand.is_free(candidate):
                next_ppn = candidate
                break
        assert next_ppn is not None
        injector.forced_program_failures.update(
            range(ftl.geometry.total_pages)
        )
        injector.forced_program_failures = {  # fail exactly one block's page
            next_ppn
        }
        for lpn in range(50):
            ftl.write(lpn % ftl.num_lpns)
        ftl.flush()
        assert ftl.stats.blocks_retired >= before_retired
        ftl.check_invariants()

    def test_erase_failure_retires_block(self):
        injector = FailureInjector(erase_fail_prob=0.002, seed=5)
        ftl = Ftl(small_config(), injector=injector)
        fill_randomly(ftl, 2000, seed=5)
        assert injector.erase_failures > 0
        assert ftl.stats.blocks_retired >= injector.erase_failures
        assert len(ftl.allocator.retired_blocks) >= injector.erase_failures
        ftl.check_invariants()


class TestCacheDesignation:
    def test_mapping_designation_boosts_dirty_budget(self):
        data = Ftl(small_config(cache_designation="data", cache_sectors=64))
        mapping = Ftl(small_config(cache_designation="mapping", cache_sectors=64))
        assert mapping.mapping.dirty_tp_limit > data.mapping.dirty_tp_limit
        assert mapping.cache.capacity < data.cache.capacity

    def test_data_designation_absorbs_hot_writes(self):
        ftl = Ftl(small_config(cache_designation="data", cache_sectors=64))
        for _ in range(100):
            ftl.write(0)
        assert ftl.stats.cache_absorbed > 90


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 1000),
    writes=st.integers(100, 800),
)
def test_invariants_hold_under_random_workloads(seed, writes):
    ftl = Ftl(tiny())
    rng = np.random.default_rng(seed)
    for _ in range(writes):
        action = rng.random()
        lpn = int(rng.integers(ftl.num_lpns))
        if action < 0.75:
            ftl.write(lpn)
        elif action < 0.9:
            ftl.read(lpn)
        else:
            ftl.trim(lpn)
    ftl.flush()
    ftl.check_invariants()
