"""Recovery honors the ECC model: report losses, never resurrect rot.

The scan used to map whatever the OOB said regardless of whether the
page was still readable — silently resurrecting data the drive could
not actually return.  These tests pin the fixed semantics: an
uncorrectable newest copy is *lost and reported* (no fallback to a
stale older copy), unless RAIN parity is present, in which case the
page is rebuilt and counted as such.
"""

import numpy as np

from repro.faults import FaultPlan, FaultSpec, PlannedFaultInjector
from repro.flash.errors import ReliabilityModel
from repro.ssd.ftl import Ftl
from repro.ssd.mapping import UNMAPPED
from repro.ssd.presets import tiny
from repro.ssd.recovery import recover_ftl

#: same fragile flash as the read-path reliability tests.
FRAGILE = ReliabilityModel(
    base_rber=1e-7,
    rated_cycles=200,
    retention_rber_per_day=1e-3,
    ecc_correctable=40,
)


def _aged_ftl(config):
    """Cold data written once, then ~10 simulated days of churn."""
    ftl = Ftl(config, reliability=FRAGILE)
    for lpn in range(32):
        ftl.write(lpn)
    ftl.flush()
    for i in range(1000):
        ftl.write(32 + i % (ftl.num_lpns - 32))
    ftl.flush()
    return ftl


class TestAgedRecovery:
    def test_uncorrectable_pages_reported_not_resurrected(self):
        config = tiny().with_changes(ops_per_day=100)
        ftl = _aged_ftl(config)
        recovered, report = recover_ftl(config, ftl.nand.clone(),
                                        reliability=FRAGILE)
        assert report.unrecoverable_pages > 0
        assert report.sectors_lost > 0
        # The aged cold sectors read back unmapped — not as stale data.
        lost = [lpn for lpn in range(32)
                if int(recovered.mapping.l2p[lpn]) == UNMAPPED
                and recovered.pslc.lookup(lpn) is None]
        assert len(lost) == report.sectors_lost

    def test_modeling_off_recovers_everything(self):
        config = tiny()  # ops_per_day=0: retention modeling disabled
        ftl = _aged_ftl(config)
        _, report = recover_ftl(config, ftl.nand.clone())
        assert report.unrecoverable_pages == 0
        assert report.sectors_lost == 0

    def test_rain_reconstructs_instead_of_losing(self):
        config = tiny().with_changes(ops_per_day=100, rain_stripe=4)
        ftl = _aged_ftl(config)
        recovered, report = recover_ftl(config, ftl.nand.clone(),
                                        reliability=FRAGILE)
        assert report.rain_reconstructed_pages > 0
        assert report.unrecoverable_pages == 0
        assert report.sectors_lost == 0
        for lpn in range(32):
            mapped = (int(recovered.mapping.l2p[lpn]) != UNMAPPED
                      or recovered.pslc.lookup(lpn) is not None)
            assert mapped, f"lpn {lpn} lost despite RAIN"


class TestInjectedHardFaults:
    def test_injected_uncorrectable_page_is_lost_at_scan(self):
        config = tiny()
        ftl = Ftl(config)
        for lpn in range(16):
            ftl.write(lpn)
        ftl.flush()
        target_ppn = int(ftl.mapping.l2p[4]) // config.geometry.sectors_per_page
        block = target_ppn // config.geometry.pages_per_block
        injector = PlannedFaultInjector(
            FaultPlan(seed=1, specs=(
                FaultSpec("uncorrectable_read",
                          blocks=(block, block + 1), count=0),
            )),
            config.geometry,
        )
        recovered, report = recover_ftl(config, ftl.nand.clone(),
                                        injector=injector)
        assert report.unrecoverable_pages > 0
        assert report.sectors_lost > 0
        assert int(recovered.mapping.l2p[4]) == UNMAPPED

    def test_stale_copy_never_wins_over_unreadable_newest(self):
        # lpn 3 is written twice; only the block holding the NEWEST copy
        # becomes unreadable.  Recovery must lose the sector, not fall
        # back to the readable-but-stale first copy.
        config = tiny()
        ftl = Ftl(config)
        for lpn in range(8):
            ftl.write(lpn)
        ftl.flush()
        stale_psa = int(ftl.mapping.l2p[3])
        for _ in range(40):  # push the next copy into a different block
            ftl.write(100)
        ftl.write(3)
        ftl.flush()
        newest_psa = int(ftl.mapping.l2p[3])
        spp = config.geometry.sectors_per_page
        ppb = config.geometry.pages_per_block
        newest_block = newest_psa // spp // ppb
        assert stale_psa // spp // ppb != newest_block
        injector = PlannedFaultInjector(
            FaultPlan(seed=1, specs=(
                FaultSpec("uncorrectable_read",
                          blocks=(newest_block, newest_block + 1), count=0),
            )),
            config.geometry,
        )
        recovered, report = recover_ftl(config, ftl.nand.clone(),
                                        injector=injector)
        got = int(recovered.mapping.l2p[3])
        assert got != stale_psa, "resurrected stale data"
        assert got == UNMAPPED
        assert report.sectors_lost >= 1


class TestRecoveredStillOperational:
    def test_writes_continue_after_lossy_recovery(self):
        config = tiny().with_changes(ops_per_day=100)
        ftl = _aged_ftl(config)
        recovered, report = recover_ftl(config, ftl.nand.clone(),
                                        reliability=FRAGILE)
        assert report.sectors_lost > 0
        rng = np.random.default_rng(5)
        for _ in range(1000):
            recovered.write(int(rng.integers(recovered.num_lpns)))
        recovered.flush()
        recovered.check_invariants()
