"""Background maintenance: idle GC, static wear leveling, refresh."""

import numpy as np
import pytest

from repro.flash.geometry import Geometry
from repro.flash.nand import NandArray
from repro.ssd.allocation import PageAllocator
from repro.ssd.device import SimulatedSSD
from repro.ssd.ftl import Ftl
from repro.ssd.ops import OpKind, OpReason
from repro.ssd.presets import tiny
from repro.ssd.timed import TimedSSD
from repro.ssd.wearlevel import WearLeveler


def churn(device_or_ftl, writes, seed=0):
    ftl = getattr(device_or_ftl, "ftl", device_or_ftl)
    rng = np.random.default_rng(seed)
    target = device_or_ftl
    for _ in range(writes):
        lba = int(rng.integers(ftl.num_lpns))
        if hasattr(target, "write_sectors"):
            target.write_sectors(lba, 1)
        else:
            target.write(lba, 1)
    if hasattr(target, "flush"):
        target.flush()


class TestWearLeveler:
    GEOM = Geometry(
        channels=1, chips_per_channel=1, dies_per_chip=1, planes_per_die=1,
        blocks_per_plane=8, pages_per_block=4, page_size=8192, sector_size=4096,
    )

    def build(self, delta=2):
        nand = NandArray(self.GEOM)
        alloc = PageAllocator(self.GEOM, nand, "CWDP")
        return WearLeveler(self.GEOM, nand, alloc, delta=delta), nand, alloc

    def test_no_leveling_when_even(self):
        leveler, _, _ = self.build()
        assert leveler.spread() == 0
        assert not leveler.should_level()

    def test_spread_detects_imbalance(self):
        leveler, nand, _ = self.build(delta=2)
        for _ in range(5):
            nand.erase(0)
        assert leveler.spread() == 5
        assert leveler.should_level()

    def test_picks_coldest_full_block(self):
        leveler, nand, alloc = self.build(delta=1)
        # Block 3 is fully written and cold; block 0 is worn.
        for page in range(self.GEOM.pages_per_block):
            nand.program(3 * self.GEOM.pages_per_block + page)
        for _ in range(5):
            nand.erase(0)
        decision = leveler.pick_victim()
        assert decision is not None
        assert decision.victim_block == 3

    def test_no_victim_when_nothing_full(self):
        leveler, nand, _ = self.build(delta=1)
        nand.erase(0)
        nand.erase(0)
        assert leveler.pick_victim() is None

    def test_delta_validation(self):
        with pytest.raises(ValueError):
            self.build(delta=0)


class TestIdleGc:
    def test_idle_gc_raises_free_blocks(self):
        device = SimulatedSSD(tiny())
        churn(device, 4000, seed=1)
        before = device.ftl.allocator.total_free_blocks()
        ops = []
        for _ in range(8):
            ops.extend(device.idle(max_blocks=6))
        after = device.ftl.allocator.total_free_blocks()
        assert device.ftl.stats.idle_gc_blocks > 0
        # Net effect over several idle rounds: more usable free blocks
        # (single rounds can break even when victims are nearly full).
        assert after >= before
        assert any(op.kind is OpKind.ERASE for op in ops)
        device.ftl.check_invariants()

    def test_idle_noop_on_fresh_device(self):
        device = SimulatedSSD(tiny())
        assert device.idle() == []

    def test_idle_gc_counts_as_ftl_traffic(self):
        device = SimulatedSSD(tiny())
        churn(device, 4000, seed=2)
        before = device.smart.gc_program_pages
        device.idle(max_blocks=6)
        assert device.smart.gc_program_pages >= before


class TestWearLevelingIntegration:
    def test_wear_migrations_shrink_spread(self):
        config = tiny().with_changes(wear_leveling=True, wear_leveling_delta=4)
        ftl = Ftl(config)
        # Cold data: written once, never touched again.
        for lpn in range(64):
            ftl.write(lpn)
        ftl.flush()
        # Hot churn over the rest wears other blocks.
        rng = np.random.default_rng(3)
        for _ in range(6000):
            ftl.write(64 + int(rng.integers(ftl.num_lpns - 64)))
        ftl.flush()
        assert ftl.leveler.should_level()
        spread_before = ftl.leveler.spread()
        for _ in range(20):
            ftl.idle_maintenance(max_blocks=4)
        assert ftl.stats.wear_migrations > 0
        assert ftl.leveler.spread() <= spread_before
        ftl.check_invariants()

    def test_wear_ops_attributed(self):
        config = tiny().with_changes(wear_leveling=True, wear_leveling_delta=2)
        device = SimulatedSSD(config)
        churn(device, 5000, seed=4)
        for _ in range(10):
            device.idle(max_blocks=4)
        if device.ftl.stats.wear_migrations:
            assert device.smart.wear_program_pages > 0

    def test_disabled_by_default(self):
        ftl = Ftl(tiny())
        assert ftl.leveler is None


class TestRefresh:
    def test_old_blocks_refreshed(self):
        config = tiny().with_changes(refresh_after_ops=100)
        ftl = Ftl(config)
        for lpn in range(48):  # cold data, programmed early
            ftl.write(lpn)
        ftl.flush()
        rng = np.random.default_rng(5)
        # Light churn: ages the device past the deadline without GC
        # churning through (and thereby implicitly refreshing) the cold
        # blocks.
        for _ in range(400):
            ftl.write(48 + int(rng.integers(ftl.num_lpns - 48)))
        ftl.flush()
        ops = []
        for _ in range(10):
            ops.extend(ftl.idle_maintenance(max_blocks=8))
        assert ftl.stats.refreshed_blocks > 0
        assert any(op.reason is OpReason.REFRESH for op in ops)
        ftl.check_invariants()
        # Refreshed data still resolves correctly.
        for lpn in range(48):
            psa = int(ftl.mapping.l2p[lpn])
            assert psa >= 0 and int(ftl.p2l[psa]) == lpn

    def test_refresh_disabled_by_default(self):
        ftl = Ftl(tiny())
        churn(ftl, 2000, seed=6)
        ftl.idle_maintenance()
        assert ftl.stats.refreshed_blocks == 0

    def test_fresh_blocks_not_refreshed(self):
        config = tiny().with_changes(refresh_after_ops=100_000)
        ftl = Ftl(config)
        churn(ftl, 1500, seed=7)
        ftl.idle_maintenance()
        assert ftl.stats.refreshed_blocks == 0


class TestTimedIdle:
    def test_idle_occupies_dies(self):
        device = TimedSSD(tiny())
        rng = np.random.default_rng(8)
        for _ in range(3000):
            device.submit("write", int(rng.integers(device.num_sectors)), 1,
                          at_ns=device.now)
        device.quiesce()
        t0 = device.now
        end = device.idle(max_blocks=6)
        if device.ftl.stats.idle_gc_blocks:
            assert end > t0  # background work takes real device time

    def test_idle_interferes_with_next_request(self):
        """The §2.1 point: background ops delay foreground requests."""
        device = TimedSSD(tiny())
        rng = np.random.default_rng(9)
        for _ in range(3000):
            device.submit("write", int(rng.integers(device.num_sectors)), 1,
                          at_ns=device.now)
        device.quiesce()
        start = device.now
        device.idle(max_blocks=8)
        request = device.submit("read", 0, 1, at_ns=start + 1)
        baseline = TimedSSD(tiny())
        baseline.submit("write", 0, 1, at_ns=0)
        baseline.flush()
        baseline.quiesce()
        quiet = baseline.submit("read", 0, 1, at_ns=baseline.now)
        if device.ftl.stats.idle_gc_blocks:
            assert request.latency_ns >= quiet.latency_ns
