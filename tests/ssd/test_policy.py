"""The pluggable policy engine: registries, protocols, new policies."""

import numpy as np
import pytest

from repro.flash.geometry import Geometry
from repro.flash.nand import NandArray
from repro.ssd.allocation import PageAllocator
from repro.ssd.gc import VictimSelector
from repro.ssd.policy import (
    REGISTRIES,
    AllocationPolicy,
    CacheAdmissionPolicy,
    CacheDesignationPolicy,
    CacheEvictionPolicy,
    PolicyRegistry,
    VictimPolicy,
    WearPolicy,
    allocation_policies,
    cache_admission_policies,
    cache_designations,
    cache_eviction_policies,
    victim_policies,
    wear_policies,
)
from repro.ssd.policy.allocation import HotColdAllocation
from repro.ssd.wearlevel import WearLeveler

GEOM = Geometry(
    channels=1, chips_per_channel=1, dies_per_chip=1, planes_per_die=1,
    blocks_per_plane=8, pages_per_block=4, page_size=8192, sector_size=4096,
)

PROTOCOLS = {
    "gc_policy": VictimPolicy,
    "allocation_scheme": AllocationPolicy,
    "cache_designation": CacheDesignationPolicy,
    "cache_admission": CacheAdmissionPolicy,
    "cache_eviction": CacheEvictionPolicy,
    "wear_policy": WearPolicy,
}


def build_selector(policy, fill_blocks=(), valid=None, seed=1):
    nand = NandArray(GEOM)
    alloc = PageAllocator(GEOM, nand, "CWDP")
    valid_arr = np.zeros(GEOM.total_blocks, dtype=np.int32)
    for block in fill_blocks:
        for page in range(GEOM.pages_per_block):
            nand.program(block * GEOM.pages_per_block + page)
    if valid:
        for block, count in valid.items():
            valid_arr[block] = count
    return VictimSelector(policy, GEOM, nand, alloc, valid_arr, seed=seed)


class TestRegistry:
    def test_registries_cover_every_knob(self):
        assert set(REGISTRIES) == set(PROTOCOLS)
        for knob, registry in REGISTRIES.items():
            assert registry.knob == knob
            assert len(registry) >= 2

    def test_every_entry_instantiates_and_conforms(self):
        for knob, registry in REGISTRIES.items():
            for entry in registry:
                policy = entry.factory()
                assert isinstance(policy, PROTOCOLS[knob]), (knob, entry.name)
                assert policy.name == entry.name
                assert entry.summary  # one-line doc required

    def test_unknown_name_lists_valid_choices(self):
        with pytest.raises(ValueError) as excinfo:
            victim_policies.resolve("psychic")
        message = str(excinfo.value)
        assert "unknown gc_policy 'psychic'" in message
        for name in victim_policies.names():
            assert name in message

    def test_duplicate_registration_rejected(self):
        registry = PolicyRegistry("demo_knob")
        registry.register("one", lambda: None, summary="first")
        with pytest.raises(ValueError, match="registered twice"):
            registry.register("one", lambda: None, summary="again")

    def test_summary_defaults_to_docstring_first_line(self):
        registry = PolicyRegistry("demo_knob")

        @registry.register("documented")
        class Documented:
            """One line of summary.

            More detail that must not leak into the summary.
            """
            name = "documented"

        assert registry.entry("documented").summary == "One line of summary."

    def test_undocumented_factory_rejected(self):
        registry = PolicyRegistry("demo_knob")
        with pytest.raises(ValueError, match="docstring"):
            registry.register("bare", lambda: None)

    def test_contains_and_names_order(self):
        assert "greedy" in victim_policies
        assert "nope" not in victim_policies
        assert victim_policies.names()[0] == "greedy"

    def test_selector_accepts_policy_object(self):
        """Injected objects bypass the registry (the seam tests use)."""

        class FirstVictim:
            name = "first"

            def choose(self, pool, view):
                return pool[0]

        selector = build_selector(FirstVictim(), fill_blocks=[2, 3],
                                  valid={2: 1, 3: 0})
        assert selector.policy == "first"
        assert selector.select_victim(0) == 2


class TestDChoices:
    def test_single_candidate_short_circuits(self):
        selector = build_selector("d_choices", fill_blocks=[5], valid={5: 4})
        assert selector.select_victim(0) == 5

    def test_prefers_low_valid_within_sample(self):
        # Sample size >= pool size: every block is sampled at least
        # statistically; over repeated picks the emptiest always wins
        # whenever it lands in the sample.
        selector = build_selector(
            "d_choices", fill_blocks=[0, 1, 2, 3], valid={0: 9, 1: 9, 2: 0, 3: 9}
        )
        selector.sample_size = 64  # with replacement: all blocks covered
        assert selector.select_victim(0) == 2

    def test_draws_with_replacement_use_selector_rng(self):
        a = build_selector("d_choices", fill_blocks=[0, 1, 2, 3],
                           valid={0: 1, 1: 2, 2: 3, 3: 4}, seed=7)
        b = build_selector("d_choices", fill_blocks=[0, 1, 2, 3],
                           valid={0: 1, 1: 2, 2: 3, 3: 4}, seed=7)
        picks_a = [a.select_victim(0) for _ in range(8)]
        picks_b = [b.select_victim(0) for _ in range(8)]
        assert picks_a == picks_b  # seeded determinism

    def test_respects_mutated_sample_size(self):
        selector = build_selector("d_choices", fill_blocks=list(range(8)),
                                  valid={b: b for b in range(8)}, seed=3)
        selector.sample_size = 2
        small = [selector.select_victim(0) for _ in range(16)]
        # d=2 with replacement cannot always find the global minimum.
        assert len(set(small)) > 1


class TestCat:
    def test_prefers_less_worn_block_on_equal_utilization(self):
        selector = build_selector("cat", fill_blocks=[0, 1], valid={0: 2, 1: 2})
        # Same utilization and age; block 1 already erased more often.
        selector.nand.block_erase_count[1] = 5
        assert selector.select_victim(0) == 0

    def test_prefers_lower_utilization(self):
        selector = build_selector("cat", fill_blocks=[0, 1], valid={0: 7, 1: 1})
        assert selector.select_victim(0) == 1

    def test_full_blocks_deprioritized(self):
        spb = GEOM.pages_per_block * GEOM.sectors_per_page
        selector = build_selector("cat", fill_blocks=[0, 1],
                                  valid={0: spb, 1: spb - 1})
        assert selector.select_victim(0) == 1


class TestHotColdAllocation:
    def test_adds_cold_stream(self):
        nand = NandArray(GEOM)
        alloc = PageAllocator(GEOM, nand, "hotcold")
        assert alloc.scheme == "hotcold"
        assert alloc.streams == ("host", "gc", "meta", "cold")
        # Both streams allocate (distinct active blocks).
        a = alloc.allocate_page("host") // GEOM.pages_per_block
        b = alloc.allocate_page("cold") // GEOM.pages_per_block
        assert a != b

    def test_first_touch_routes_cold_rewrites_route_hot(self):
        policy = HotColdAllocation()
        assert policy.route("host", [1, 2]) == "cold"   # first touch
        assert policy.route("host", [1, 2]) == "host"   # now hot
        assert policy.route("gc", [1, 2]) == "gc"       # only host splits

    def test_majority_vote(self):
        policy = HotColdAllocation()
        policy.route("host", [1])
        assert policy.route("host", [1, 2]) == "host"  # 1 hot of 2: majority
        assert policy.route("host", [3, 4, 5]) == "cold"

    def test_plane_order_matches_cwdp_base(self):
        nand = NandArray(GEOM)
        hot = PageAllocator(GEOM, nand, "hotcold")
        ref = PageAllocator(GEOM, NandArray(GEOM), "CWDP")
        for index in range(GEOM.planes_total * 2):
            assert hot.plane_for_index(index) == ref.plane_for_index(index)


class TestCachePolicies:
    def test_designation_plans(self):
        data = cache_designations.resolve("data")()
        mapping = cache_designations.resolve("mapping")()
        plan = data.plan(256, GEOM)
        assert plan.cache_sectors == 256 and plan.extra_dirty_tps == 0
        plan = mapping.plan(256, GEOM)
        assert plan.cache_sectors == GEOM.sectors_per_page
        assert plan.extra_dirty_tps == 256 * GEOM.sector_size // GEOM.page_size

    def test_data_designation_floors_at_one_page(self):
        data = cache_designations.resolve("data")()
        assert data.plan(1, GEOM).cache_sectors == GEOM.sectors_per_page

    def test_admission_flags(self):
        assert cache_admission_policies.resolve("always")().always is True
        assert cache_admission_policies.resolve("bypass")().always is False

    def test_fifo_eviction_ignores_hits(self):
        from repro.ssd.cache import WriteCache

        lru = WriteCache(4, eviction="lru")
        fifo = WriteCache(4, eviction="fifo")
        for cache in (lru, fifo):
            for lpn in (1, 2, 3):
                cache.insert(lpn)
            cache.insert(1)  # hit
        assert lru.take_flush_batch(1) == [2]   # 1 was refreshed
        assert fifo.take_flush_batch(1) == [1]  # arrival order kept


class TestWearPolicies:
    def _leveler(self, policy):
        nand = NandArray(GEOM)
        alloc = PageAllocator(GEOM, nand, "CWDP")
        for block in (2, 3, 4):
            for page in range(GEOM.pages_per_block):
                nand.program(block * GEOM.pages_per_block + page)
        return WearLeveler(GEOM, nand, alloc, delta=1, policy=policy)

    def test_coldest_picks_lowest_erase_count(self):
        leveler = self._leveler("coldest")
        leveler.nand.block_erase_count[2] = 9
        leveler.nand.block_erase_count[3] = 1
        leveler.nand.block_erase_count[4] = 4
        assert leveler.pick_victim().victim_block == 3

    def test_sampled_cold_is_deterministic_and_eligible(self):
        a = self._leveler("sampled_cold")
        b = self._leveler("sampled_cold")
        assert a.pick_victim().victim_block == b.pick_victim().victim_block
        assert a.pick_victim().victim_block in (2, 3, 4)

    def test_no_eligible_blocks_returns_none(self):
        nand = NandArray(GEOM)
        alloc = PageAllocator(GEOM, nand, "CWDP")
        leveler = WearLeveler(GEOM, nand, alloc, delta=1, policy="coldest")
        assert leveler.pick_victim() is None

    def test_all_wear_policies_resolve(self):
        for entry in wear_policies:
            leveler = self._leveler(entry.name)
            decision = leveler.pick_victim()
            assert decision is not None


class TestConfigIntegration:
    def test_config_validates_every_policy_knob(self):
        from repro.ssd.config import SsdConfig

        base = SsdConfig()
        for knob, registry in REGISTRIES.items():
            field = {"allocation_scheme": "allocation_scheme",
                     "gc_policy": "gc_policy",
                     "cache_designation": "cache_designation",
                     "cache_admission": "cache_admission",
                     "cache_eviction": "cache_eviction",
                     "wear_policy": "wear_policy"}[knob]
            with pytest.raises(ValueError, match="valid choices"):
                base.with_changes(**{field: "not-a-policy"})
            for name in registry.names():
                base.with_changes(**{field: name})  # all accepted

    def test_eviction_unknown_name_lists_choices(self):
        with pytest.raises(ValueError, match="lru"):
            cache_eviction_policies.resolve("mru")

    def test_allocation_lowercase_scheme_still_accepted(self):
        nand = NandArray(GEOM)
        alloc = PageAllocator(GEOM, nand, "cwdp")
        assert alloc.scheme == "CWDP"

    def test_allocation_registry_rejects_bad_scheme(self):
        assert "CWDX" not in allocation_policies
        with pytest.raises(ValueError, match="valid choices"):
            PageAllocator(GEOM, NandArray(GEOM), "CWDX")
