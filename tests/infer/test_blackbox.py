"""Black-box inference: each probe against configurations it must and
must not distinguish."""

from repro.infer import PolicyPoint, infer_base
from repro.infer.blackbox import BlackboxInference, run_blackbox
from repro.infer.toolloop import ToolLoop

BASE = infer_base()


def bench(point):
    return BlackboxInference(point.apply(BASE), ToolLoop("blackbox"))


class TestCacheProbes:
    def test_designation_data_vs_mapping(self):
        assert bench(PolicyPoint()).infer_cache_designation()[0] == "data"
        assert bench(PolicyPoint(cache_designation="mapping")) \
            .infer_cache_designation()[0] == "mapping"

    def test_admission_always_vs_bypass(self):
        assert bench(PolicyPoint()).infer_cache_admission() == "always"
        assert bench(PolicyPoint(cache_admission="bypass")) \
            .infer_cache_admission() == "bypass"

    def test_eviction_lru_vs_fifo(self):
        lab = bench(PolicyPoint())
        assert lab.infer_cache_eviction("data", "always", 256) == "lru"
        lab = bench(PolicyPoint(cache_eviction="fifo"))
        assert lab.infer_cache_eviction("data", "always", 256) == "fifo"

    def test_eviction_unobservable_behind_bypass(self):
        lab = bench(PolicyPoint(cache_admission="bypass"))
        assert lab.infer_cache_eviction("data", "bypass", 256) is None


class TestAllocationProbe:
    def test_single_stream_reads_as_representative(self):
        assert bench(PolicyPoint()).infer_allocation() == "CWDP"
        # A different static permutation is tap-ambiguous by design.
        assert bench(PolicyPoint(allocation="DWCP")) \
            .infer_allocation() == "CWDP"

    def test_hotcold_ping_pong_is_detected(self):
        assert bench(PolicyPoint(allocation="hotcold")) \
            .infer_allocation() == "hotcold"


class TestFullRun:
    def test_wear_is_reported_unrecovered(self):
        point = PolicyPoint(wear_policy="sampled_cold")
        recovered = run_blackbox(point.apply(BASE), ToolLoop("blackbox"))
        assert recovered["wear_policy"] is None

    def test_gc_policy_recovered_on_default_point(self):
        recovered = run_blackbox(PolicyPoint().apply(BASE),
                                 ToolLoop("blackbox"))
        assert recovered["gc_policy"] == "greedy"
        assert recovered["cache_designation"] == "data"
        assert recovered["cache_admission"] == "always"
        assert recovered["cache_eviction"] == "lru"
