"""Property: firmware-built devices behave exactly like configured FTLs.

For any registry-valid policy point, a :class:`HackableSSD` built with
policy firmware must expose a device whose observable behavior (SMART
counters, returned flash-op stream) is identical to a plain
:class:`SimulatedSSD` configured at the same point, for any workload
prefix.  This is what makes the round trip meaningful: the firmware is
another *view* of the policy, not another implementation of it.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.infer.grid import KNOBS, PolicyPoint, infer_base, registry_names
from repro.ssd.device import SimulatedSSD
from repro.ssd.firmware.device import HackableSSD

BASE = infer_base()

points = st.builds(
    PolicyPoint,
    **{knob: st.sampled_from(registry_names(knob)) for knob in KNOBS},
)

writes = st.lists(
    st.tuples(st.integers(0, BASE.logical_sectors - 9),
              st.integers(1, 8)),
    min_size=1, max_size=40,
)


def smart_view(device):
    smart = device.smart
    return (smart.host_program_pages, smart.ftl_program_pages,
            smart.erase_count, smart.host_sectors_written)


@settings(max_examples=15, deadline=None)
@given(point=points, workload=writes, flush_every=st.integers(1, 9))
def test_firmware_device_matches_configured_ftl(point, workload, flush_every):
    config = point.apply(BASE)
    built = HackableSSD(config, policy_firmware=True).ssd
    direct = SimulatedSSD(config)
    for i, (lba, count) in enumerate(workload):
        ops_built = built.write_sectors(lba, count)
        ops_direct = direct.write_sectors(lba, count)
        assert ops_built == ops_direct
        if i % flush_every == 0:
            assert built.flush() == direct.flush()
    built.flush()
    direct.flush()
    assert smart_view(built) == smart_view(direct)


@settings(max_examples=10, deadline=None)
@given(point=points)
def test_every_point_builds_policy_firmware(point):
    device = HackableSSD(point.apply(BASE), policy_firmware=True)
    names = [s.name for s in device.firmware.sections]
    assert names[5:] == ["pgc", "palloc", "pcache", "pwear"]
    assert all(len(s.data) for s in device.firmware.sections)
