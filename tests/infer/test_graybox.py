"""Gray-box inference: full six-knob recovery with confirmation."""

import pytest

from repro.infer import PolicyPoint, infer_base
from repro.infer.graybox import run_graybox, scan_section
from repro.infer.toolloop import ToolLoop
from repro.ssd.firmware.builder import build_firmware, memory_map_for
from repro.ssd.firmware.device import HackableSSD

BASE = infer_base()

ALL_NONDEFAULT = PolicyPoint(
    gc_policy="cat", allocation="DPWC", cache_designation="mapping",
    cache_admission="bypass", cache_eviction="fifo",
    wear_policy="sampled_cold")

HOTCOLD = PolicyPoint(gc_policy="d_choices", allocation="hotcold",
                      cache_admission="always")


def recover(point):
    device = HackableSSD(point.apply(BASE), policy_firmware=True)
    loop = ToolLoop("graybox")
    recovered, confirmed = run_graybox(device, loop)
    return recovered, confirmed, loop


@pytest.mark.parametrize("point", [PolicyPoint(), ALL_NONDEFAULT, HOTCOLD],
                         ids=["default", "all-nondefault", "hotcold"])
def test_full_recovery_with_confirmation(point):
    recovered, confirmed, _ = recover(point)
    for knob in recovered:
        assert recovered[knob] == getattr(point, knob), knob
        assert confirmed[knob], knob


def test_transcript_covers_all_phases():
    _, _, loop = recover(PolicyPoint())
    phases = {s.phase for s in loop.steps}
    assert phases == {"probe", "analyze", "hypothesize", "confirm"}


def test_scanner_reads_generated_cores():
    config = HOTCOLD.apply(BASE)
    image = build_firmware(memory_map_for(config), config)
    facts = scan_section(image.section("palloc"))
    # hotcold's heat pointer is harvested; latches stored in CWDP order.
    assert len(facts.pointers) >= 2
    latches = [off for off, _ in facts.mmio_stores if off in
               (0x10, 0x14, 0x18, 0x1C)]
    assert latches == [0x10, 0x14, 0x18, 0x1C]
    gc = scan_section(image.section("pgc"))
    assert gc.has_xorshift  # d_choices samples randomly


def test_plain_firmware_is_rejected():
    device = HackableSSD(BASE)  # no policy cores in the image
    with pytest.raises(RuntimeError, match="no policy cores"):
        run_graybox(device, ToolLoop("graybox"))
