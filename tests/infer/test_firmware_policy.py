"""Policy-core firmware generation: layout, distinctness, back-compat."""

import pytest

from repro.infer.grid import PolicyPoint, infer_base
from repro.ssd.firmware.builder import (
    GC_FEATURES,
    MMIO_CACHE_CAP,
    MMIO_CACHE_TP,
    MMIO_DIM_LATCHES,
    POLICY_TABLE_ENTRIES,
    POLICY_TABLE_NAMES,
    POLICY_TABLE_TAG_BYTES,
    POLICY_TABLE_TAGS,
    build_firmware,
    memory_map_for,
)
from repro.ssd.firmware.device import HackableSSD
from repro.ssd.policy import REGISTRIES

BASE = infer_base()
MM = memory_map_for(BASE)


class TestBackCompat:
    def test_default_build_has_no_policy_sections(self):
        image = build_firmware(MM)
        assert [s.name for s in image.sections] == [
            "core0", "core1", "core2", "strings", "config"]

    def test_default_device_is_unchanged(self):
        device = HackableSSD(BASE)
        assert device.policy_firmware is False
        assert len(device.firmware.sections) == 5

    def test_policy_build_appends_four_cores(self):
        image = build_firmware(MM, BASE)
        assert [s.name for s in image.sections[5:]] == [
            "pgc", "palloc", "pcache", "pwear"]


class TestTableLayout:
    def test_every_table_named_and_tagged(self):
        assert set(POLICY_TABLE_NAMES) == set(POLICY_TABLE_TAGS)
        tags = list(POLICY_TABLE_TAGS.values())
        assert len(set(tags)) == len(tags)
        assert all(len(tag) == 8 for tag in tags)

    def test_slots_do_not_overlap(self):
        bases = [base for _, base in MM.policy_table_bases]
        assert bases == sorted(bases)
        size = POLICY_TABLE_ENTRIES * 4
        for a, b in zip(bases, bases[1:]):
            assert a + size <= b - POLICY_TABLE_TAG_BYTES

    def test_region_sits_in_dram_below_mmio(self):
        start, end = MM.policy_region
        assert MM.dram_base <= start < end < 0x40000000
        assert start > MM.pslc_index_base + MM.pslc_index_bytes

    def test_policy_table_lookup(self):
        for name in POLICY_TABLE_NAMES:
            assert MM.policy_table(name) >= MM.dram_base
        with pytest.raises(KeyError):
            MM.policy_table("nonsense")


class TestPolicyDistinctness:
    """Every registry point must assemble to a *distinct* observable
    firmware shape — otherwise the knob is unrecoverable by design."""

    def test_gc_features_cover_registry_and_are_distinct(self):
        assert set(GC_FEATURES) == set(REGISTRIES["gc_policy"].names())
        signatures = list(GC_FEATURES.values())
        assert len(set(signatures)) == len(signatures)

    @pytest.mark.parametrize("knob,field", [
        ("gc_policy", "gc_policy"),
        ("allocation_scheme", "allocation_scheme"),
        ("cache_designation", "cache_designation"),
        ("cache_admission", "cache_admission"),
        ("cache_eviction", "cache_eviction"),
        ("wear_policy", "wear_policy"),
    ])
    def test_knob_values_change_the_image(self, knob, field):
        blobs = {}
        for name in REGISTRIES[knob].names():
            config = BASE.with_changes(**{field: name})
            image = build_firmware(memory_map_for(config), config)
            blobs[name] = b"".join(s.data for s in image.sections[5:])
        assert len(set(blobs.values())) == len(blobs), (
            f"two {knob} values assemble to identical policy cores")

    def test_latch_offsets_are_distinct(self):
        offsets = list(MMIO_DIM_LATCHES.values())
        assert len(set(offsets)) == len(offsets)
        assert MMIO_CACHE_CAP not in offsets
        assert MMIO_CACHE_TP not in offsets


class TestLiveTables:
    def test_policy_region_serves_tags_and_state(self):
        device = HackableSSD(
            PolicyPoint(allocation="hotcold").apply(BASE),
            policy_firmware=True)
        for i in range(64):
            device.ssd.write_sectors(i * 4, 4)
        device.ssd.flush()
        mm = device.memory_map
        for name, base in mm.policy_table_bases:
            tag = device.read_mem(base - POLICY_TABLE_TAG_BYTES, 8)
            assert tag == POLICY_TABLE_TAGS[name]
        valid = device.read_mem(mm.policy_table("valid"), 64)
        assert valid != b"\xff" * 64

    def test_non_policy_device_serves_blank_region(self):
        device = HackableSSD(BASE)
        base = MM.policy_table("pool")
        assert device.read_mem(base - POLICY_TABLE_TAG_BYTES, 8) == b"\xff" * 8
