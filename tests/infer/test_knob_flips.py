"""Differential knob-flip suite: which knobs are visible from outside?

Flip exactly one knob from the default grid point and compare black-box
fingerprints.  Five knobs move the fingerprint; ``wear_policy`` does
not (it is invisible at probe scale), and the 13 static allocation
permutations are mutually indistinguishable on every component except
the WAF fingerprint — both documented transparency gaps, asserted here
so a regression that accidentally makes them visible (or hides a
visible knob) fails loudly.
"""

from dataclasses import replace

import pytest

from repro.infer import PolicyPoint, infer_base, probe_fingerprint

BASE = infer_base()


@pytest.fixture(scope="module")
def default_fp():
    return probe_fingerprint(PolicyPoint().apply(BASE))


def flip_fp(**knobs):
    return probe_fingerprint(PolicyPoint(**knobs).apply(BASE))


class TestVisibleKnobs:
    def test_gc_policy_flip_moves_waf(self, default_fp):
        fp = flip_fp(gc_policy="cost_benefit")
        assert (fp.waf, fp.erases) != (default_fp.waf, default_fp.erases)

    def test_hotcold_flip_moves_stream_class(self, default_fp):
        fp = flip_fp(allocation="hotcold")
        assert default_fp.stream_class == "single-stream"
        assert fp.stream_class == "multi-stream"

    def test_designation_flip_moves_buffer_size(self, default_fp):
        fp = flip_fp(cache_designation="mapping")
        assert fp.buffer_sectors < default_fp.buffer_sectors

    def test_admission_flip_moves_program_pages(self, default_fp):
        fp = flip_fp(cache_admission="bypass")
        assert default_fp.admission_pages <= 2
        assert fp.admission_pages > 2 * default_fp.admission_pages

    def test_eviction_flip_moves_victim_latency(self, default_fp):
        fp = flip_fp(cache_eviction="fifo")
        assert default_fp.victim_is_ram_hit is True
        assert fp.victim_is_ram_hit is False


class TestInvisibleKnobs:
    def test_wear_policy_flip_is_invisible(self, default_fp):
        fp = flip_fp(wear_policy="sampled_cold")
        assert fp == default_fp

    def test_static_permutations_are_tap_ambiguous(self, default_fp):
        """A different page-allocation permutation changes nothing the
        single-channel tap or the cache probes can see; only the WAF
        fingerprint moves (placement shifts GC slightly)."""
        fp = flip_fp(allocation="PDWC")
        assert replace(fp, waf=default_fp.waf, erases=default_fp.erases) \
            == default_fp
