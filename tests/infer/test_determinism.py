"""Seed determinism: same image + seed → byte-identical output.

The satellite contract for ``repro-ssd infer``: recovered knobs *and*
the tool-loop transcript must be byte-identical across runs, because
the sweep cache and CI smoke both rely on content-stable results.
"""

from repro.cli import main
from repro.infer import (
    PolicyPoint,
    random_points,
    run_blackbox_trip,
    run_graybox_trip,
)


def test_random_points_are_seed_stable():
    assert random_points(8, seed=42) == random_points(8, seed=42)
    assert random_points(8, seed=42) != random_points(8, seed=43)


def test_graybox_trip_is_deterministic():
    point = PolicyPoint(gc_policy="cat", allocation="hotcold")
    first = run_graybox_trip(point)
    second = run_graybox_trip(point)
    assert first.recoveries == second.recoveries
    assert first.transcript == second.transcript


def test_blackbox_trip_is_deterministic():
    point = PolicyPoint(cache_designation="mapping")
    first = run_blackbox_trip(point)
    second = run_blackbox_trip(point)
    assert first.recoveries == second.recoveries
    assert first.transcript == second.transcript


def test_cli_infer_output_is_byte_identical(capsys):
    argv = ["infer", "--seed", "5", "--mode", "graybox"]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert main(argv) == 0
    second = capsys.readouterr().out
    assert first == second
    assert "graybox" in first and "tool loop" in first


def test_cli_infer_seed_changes_the_point(capsys):
    assert main(["infer", "--seed", "5", "--mode", "graybox"]) == 0
    first = capsys.readouterr().out
    assert main(["infer", "--seed", "6", "--mode", "graybox"]) == 0
    second = capsys.readouterr().out
    assert first.splitlines()[0] != second.splitlines()[0]
