"""Transparency-score aggregation and the exp-cell sweep plumbing."""

from repro.exp import Runner
from repro.infer import (
    KNOBS,
    PolicyPoint,
    run_transparency_cell,
    run_transparency_sweep,
    transparency_cells,
)
from repro.infer.score import TransparencyScore


def small_sweep(jobs):
    return run_transparency_sweep(2, seed=1,
                                  runner=Runner(jobs=jobs, cache=None))


def test_sweep_scores_and_parallel_equivalence():
    serial = small_sweep(jobs=1)
    parallel = small_sweep(jobs=2)
    assert serial.rows() == parallel.rows()
    assert [t.point for t in serial.trips] == [t.point for t in parallel.trips]
    assert serial.graybox_total > serial.blackbox_total
    for score in serial.scores():
        assert 0 <= score.blackbox_recovered <= score.points
        assert score.graybox_rate == 1.0


def test_rows_shape_matches_csv_contract():
    trip = run_transparency_cell(PolicyPoint().astuple(), seed=0)
    score = TransparencyScore((trip,))
    rows = score.rows()
    assert [r[0] for r in rows] == list(KNOBS)
    assert all(len(r) == 6 for r in rows)
    rendered = score.render()
    assert "transparency score" in rendered
    assert "gray-box" in rendered


def test_cells_are_labelled_and_cacheable():
    cells = transparency_cells([PolicyPoint()], seed=3)
    assert cells[0].label.startswith("infer:")
    assert cells[0].cacheable
    assert cells[0].config == PolicyPoint().astuple()
