"""``Kernel.schedule_batch`` must be indistinguishable from a
``schedule`` loop: same clamping, same tie-breaking, same firing order —
batching changes admission cost, never the timeline."""

import numpy as np
import pytest

from repro.sim.kernel import Kernel


def _fire_log(kernel: Kernel) -> list[tuple[int, int]]:
    log: list[tuple[int, int]] = []

    def make(tag: int):
        return lambda: log.append((kernel.now, tag))

    return log, make


def test_batch_matches_schedule_loop_order():
    rng = np.random.default_rng(9)
    times = rng.integers(0, 1_000, size=300).tolist()

    loop_kernel = Kernel()
    loop_log, loop_cb = _fire_log(loop_kernel)
    for tag, at in enumerate(times):
        loop_kernel.schedule(at, loop_cb(tag))
    loop_kernel.run()

    batch_kernel = Kernel()
    batch_log, batch_cb = _fire_log(batch_kernel)
    batch_kernel.schedule_batch(
        [(at, batch_cb(tag), ()) for tag, at in enumerate(times)])
    batch_kernel.run()

    assert batch_log == loop_log


def test_small_batches_against_large_heap_match():
    # Small batches take the push path (re-heapifying a large heap per
    # batch would be quadratic); order must still match the loop.
    rng = np.random.default_rng(4)
    times = rng.integers(0, 5_000, size=400).tolist()

    loop_kernel = Kernel()
    loop_log, loop_cb = _fire_log(loop_kernel)
    batch_kernel = Kernel()
    batch_log, batch_cb = _fire_log(batch_kernel)

    for tag, at in enumerate(times):
        loop_kernel.schedule(at, loop_cb(tag))
    for start in range(0, len(times), 16):
        batch_kernel.schedule_batch(
            [(at, batch_cb(start + i), ())
             for i, at in enumerate(times[start:start + 16])])

    loop_kernel.run()
    batch_kernel.run()
    assert batch_log == loop_log


def test_batch_clamps_past_times_to_now():
    kernel = Kernel()
    kernel.run_until(100)
    log, cb = _fire_log(kernel)
    kernel.schedule_batch([(40, cb(0), ()), (150, cb(1), ())])
    kernel.run()
    assert log == [(100, 0), (150, 1)]


def test_batch_passes_args():
    kernel = Kernel()
    seen = []
    kernel.schedule_batch([(5, seen.append, ("a",)), (3, seen.append, ("b",))])
    kernel.run()
    assert seen == ["b", "a"]


def test_batch_interleaves_with_scheduled_events():
    # Events admitted via schedule and schedule_batch share one sequence
    # counter, so ties resolve in admission order across both APIs.
    kernel = Kernel()
    log, cb = _fire_log(kernel)
    kernel.schedule(10, cb(0))
    kernel.schedule_batch([(10, cb(1), ()), (10, cb(2), ())])
    kernel.schedule(10, cb(3))
    kernel.run()
    assert log == [(10, 0), (10, 1), (10, 2), (10, 3)]


@pytest.mark.parametrize("count", [1, 64, 65, 500])
def test_batch_sizes_cross_heapify_threshold(count):
    kernel = Kernel()
    log, cb = _fire_log(kernel)
    kernel.schedule_batch([(i % 7, cb(i), ()) for i in range(count)])
    kernel.run()
    assert len(log) == count
    assert [t for t, _ in log] == sorted(t for t, _ in log)
