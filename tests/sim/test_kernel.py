"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.obs import CounterSink
from repro.sim import CapacityPool, Kernel, Resource, earliest_start


class TestKernelClock:
    def test_starts_at_zero(self):
        assert Kernel().now == 0

    def test_run_until_advances(self):
        kernel = Kernel()
        kernel.run_until(500)
        assert kernel.now == 500

    def test_run_until_never_goes_backward(self):
        kernel = Kernel()
        kernel.run_until(500)
        kernel.run_until(100)
        assert kernel.now == 500

    def test_events_fire_in_time_order(self):
        kernel = Kernel()
        fired = []
        kernel.schedule(300, fired.append, "c")
        kernel.schedule(100, fired.append, "a")
        kernel.schedule(200, fired.append, "b")
        kernel.run_until(1000)
        assert fired == ["a", "b", "c"]

    def test_same_time_ties_break_by_schedule_order(self):
        kernel = Kernel()
        fired = []
        for tag in ("first", "second", "third"):
            kernel.schedule(100, fired.append, tag)
        kernel.run_until(100)
        assert fired == ["first", "second", "third"]

    def test_clock_is_event_time_during_callback(self):
        kernel = Kernel()
        seen = []
        kernel.schedule(250, lambda: seen.append(kernel.now))
        kernel.run_until(1000)
        assert seen == [250]
        assert kernel.now == 1000

    def test_past_events_clamp_to_now(self):
        kernel = Kernel()
        kernel.run_until(500)
        fired = []
        kernel.schedule(100, fired.append, "late")
        assert kernel.next_event_at() == 500
        kernel.run_until(500)
        assert fired == ["late"]

    def test_events_can_schedule_events(self):
        kernel = Kernel()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                kernel.call_after(10, chain, n + 1)

        kernel.schedule(0, chain, 0)
        kernel.run()
        assert fired == [0, 1, 2, 3]
        assert kernel.now == 30
        assert kernel.pending_events == 0

    def test_run_until_leaves_future_events_pending(self):
        kernel = Kernel()
        kernel.schedule(1000, lambda: None)
        kernel.run_until(500)
        assert kernel.pending_events == 1
        assert kernel.next_event_at() == 1000


class TestProcess:
    def test_process_sleeps_by_yielded_delay(self):
        kernel = Kernel()
        wakes = []

        def proc():
            for _ in range(3):
                yield 100
                wakes.append(kernel.now)

        kernel.spawn(proc())
        kernel.run()
        assert wakes == [100, 200, 300]

    def test_cancel_stops_process(self):
        kernel = Kernel()
        wakes = []

        def proc():
            while True:
                yield 100
                wakes.append(kernel.now)

        process = kernel.spawn(proc())
        kernel.run_until(250)
        process.cancel()
        kernel.run_until(1000)
        assert wakes == [100, 200]
        assert not process.alive

    def test_exhausted_process_dies(self):
        kernel = Kernel()

        def proc():
            yield 10

        process = kernel.spawn(proc())
        kernel.run()
        assert not process.alive


class TestResource:
    def test_registry_returns_same_object(self):
        kernel = Kernel()
        assert kernel.resource("die/0") is kernel.resource("die/0")
        assert kernel.resource("die/0") is not kernel.resource("die/1")

    def test_hold_moves_free_at_forward(self):
        kernel = Kernel()
        die = kernel.resource("die/0")
        assert die.hold(0, 100) == 100
        assert die.free_at == 100
        # An earlier-ending hold does not move free_at backward.
        die.hold(10, 50)
        assert die.free_at == 100

    def test_busy_accounting(self):
        kernel = Kernel()
        die = kernel.resource("die/0")
        die.hold(0, 100)
        die.hold(100, 250)
        assert die.holds == 2
        assert die.busy_ns == 250
        assert die.utilization(500) == pytest.approx(0.5)
        assert die.utilization(0) == 0.0

    def test_earliest_start_gates_on_all_resources(self):
        kernel = Kernel()
        die = kernel.resource("die/0")
        channel = kernel.resource("channel/0")
        die.hold(0, 300)
        channel.hold(0, 150)
        assert earliest_start(0, die, channel) == 300
        assert earliest_start(400, die, channel) == 400

    def test_horizon_covers_all_resources(self):
        kernel = Kernel()
        kernel.resource("a").hold(0, 700)
        kernel.resource("b").hold(0, 300)
        assert kernel.horizon() == 700
        kernel.run_until(900)
        assert kernel.horizon() == 900

    def test_holds_emit_resource_busy_events(self):
        kernel = Kernel()
        sink = CounterSink()
        kernel.attach_sink(sink)
        die = kernel.resource("die/0")
        die.hold(0, 100)
        die.hold(150, 200, requested_ns=120)
        assert sink.count("resource_busy") == 2
        assert sink.total("resource_busy") == 150  # busy_ns sum

    def test_no_events_without_sink(self):
        kernel = Kernel()
        die = kernel.resource("die/0")
        die.hold(0, 100)
        # NULL_SINK fast path: nothing recorded, nothing raised.
        assert die.holds == 1


class TestCapacityPool:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            CapacityPool(0)

    def test_acquire_with_room_is_immediate(self):
        pool = CapacityPool(10)
        assert pool.acquire(100, 4) == 100
        assert pool.occupied == 4

    def test_acquire_waits_for_earliest_releases(self):
        pool = CapacityPool(4)
        assert pool.acquire(0, 4) == 0
        pool.schedule_release(500, 2)
        pool.schedule_release(300, 2)
        # Needs 2 units: the 300 ns release suffices; heap order pops
        # the earliest first.
        assert pool.acquire(100, 2, overshoot=2) == 300

    def test_release_due_credits_past_releases(self):
        pool = CapacityPool(8)
        pool.acquire(0, 8)
        pool.schedule_release(100, 8)
        pool.release_due(200)
        assert pool.occupied == 0
        assert pool.pending_releases == 0

    def test_occupancy_clamped_to_capacity_plus_overshoot(self):
        pool = CapacityPool(4)
        pool.acquire(0, 4)
        # No releases scheduled: admission cannot wait, occupancy clamps.
        pool.acquire(10, 3, overshoot=3)
        assert pool.occupied == 4 + 3

    def test_admission_never_before_request_time(self):
        pool = CapacityPool(4)
        pool.acquire(0, 4)
        pool.schedule_release(50, 4)
        # The release predates the request: admission is at the request.
        assert pool.acquire(200, 4, overshoot=4) == 200


class TestPowerCut:
    def test_power_loss_raised_at_cut_time(self):
        from repro.sim import PowerLoss

        kernel = Kernel()
        fired = []
        kernel.schedule(100, fired.append, "before")
        kernel.schedule(900, fired.append, "after")
        kernel.power_cut(500)
        with pytest.raises(PowerLoss) as err:
            kernel.run_until(1000)
        assert err.value.at_ns == 500
        assert fired == ["before"]  # later events abandoned

    def test_power_loss_carries_cut_time(self):
        from repro.sim import PowerLoss

        kernel = Kernel()
        kernel.power_cut(250)
        with pytest.raises(PowerLoss, match="250 ns"):
            kernel.run_until(300)
        assert kernel.now == 250
