"""Stable content hashing: cross-process identity and sensitivity."""

import pickle
import subprocess
import sys
from dataclasses import dataclass

import numpy as np
import pytest

from repro.exp.hashing import stable_digest
from repro.ssd.config import SsdConfig
from repro.ssd.presets import mqsim_baseline, tiny
from repro.workloads.patterns import Region
from repro.workloads.spec import JobSpec


@dataclass(frozen=True)
class Point:
    x: int
    y: float


class TestPrimitives:
    def test_type_tags_distinguish_look_alikes(self):
        assert stable_digest(1) != stable_digest(True)
        assert stable_digest(0) != stable_digest(False)
        assert stable_digest(1) != stable_digest(1.0)
        assert stable_digest("1") != stable_digest(1)
        assert stable_digest(b"a") != stable_digest("a")
        assert stable_digest([1, 2]) != stable_digest((1, 2))
        assert stable_digest(None) != stable_digest(0)

    def test_dict_order_irrelevant(self):
        assert stable_digest({"a": 1, "b": 2}) == stable_digest({"b": 2, "a": 1})

    def test_set_order_irrelevant(self):
        assert stable_digest({3, 1, 2}) == stable_digest({2, 3, 1})

    def test_numpy_scalars_match_python(self):
        assert stable_digest(np.int64(7)) == stable_digest(7)
        assert stable_digest(np.float64(0.5)) == stable_digest(0.5)

    def test_ndarray_content_addressed(self):
        a = np.arange(6, dtype=np.int32)
        assert stable_digest(a) == stable_digest(a.copy())
        assert stable_digest(a) != stable_digest(a.astype(np.int64))
        assert stable_digest(a) != stable_digest(a.reshape(2, 3))

    def test_functions_by_qualname(self):
        assert stable_digest(stable_digest) == stable_digest(stable_digest)

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            stable_digest(object())

    def test_dataclass_field_values_matter(self):
        assert stable_digest(Point(1, 2.0)) != stable_digest(Point(2, 2.0))
        assert stable_digest(Point(1, 2.0)) == stable_digest(Point(1, 2.0))


class TestConfigHashing:
    """Satellite: SsdConfig / JobSpec hash stably across processes."""

    def test_ssd_config_digest_deterministic(self):
        assert stable_digest(tiny()) == stable_digest(tiny())
        assert stable_digest(tiny()) != stable_digest(mqsim_baseline())

    def test_config_change_changes_digest(self):
        base = tiny()
        assert stable_digest(base) != stable_digest(
            base.with_changes(gc_policy="random"))

    def test_jobspec_digest_ignores_kwargs_dict_order(self):
        a = JobSpec("j", "randwrite", Region(0, 100), bs_sectors=1,
                    io_count=10, seed=1, pattern="hotcold",
                    pattern_kwargs={"space_fraction": 0.2,
                                    "traffic_fraction": 0.8})
        b = JobSpec("j", "randwrite", Region(0, 100), bs_sectors=1,
                    io_count=10, seed=1, pattern="hotcold",
                    pattern_kwargs={"traffic_fraction": 0.8,
                                    "space_fraction": 0.2})
        assert stable_digest(a) == stable_digest(b)

    def test_ssd_config_pickle_round_trip(self):
        config = mqsim_baseline(scale=2)
        clone = pickle.loads(pickle.dumps(config))
        assert clone == config
        assert stable_digest(clone) == stable_digest(config)

    def test_jobspec_pickle_round_trip(self):
        job = JobSpec("j", "randwrite", Region(0, 256), bs_sectors=2,
                      io_count=50, seed=9, pattern="hotcold",
                      pattern_kwargs={"space_fraction": 0.2})
        clone = pickle.loads(pickle.dumps(job))
        assert stable_digest(clone) == stable_digest(job)

    def test_digest_survives_process_boundary(self):
        """The decisive cross-process check: a fresh interpreter with a
        different hash seed produces the identical digest."""
        import os
        from pathlib import Path

        import repro

        code = (
            "from repro.ssd.presets import mqsim_baseline\n"
            "from repro.exp.hashing import stable_digest\n"
            "print(stable_digest(mqsim_baseline(scale=2)))\n"
        )
        src = str(Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONHASHSEED"] = "12345"
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True, env=env,
        )
        assert out.stdout.strip() == stable_digest(mqsim_baseline(scale=2))
