"""Runner robustness: transient worker death and pool-less degradation.

A worker killed mid-cell (OOM killer, SIGKILL, a segfaulting native
extension) surfaces as ``BrokenProcessPool`` on its future.  That is
transient — the *cell* did not fail, its *host process* did — so the
runner resubmits the unfinished cells to a fresh pool instead of
aborting the study.  Deterministic cell exceptions must keep failing
fast as CellError: retrying those only wastes the retry budget.
"""

import os
from dataclasses import dataclass

import pytest

from repro.exp import Cell, CellError, Runner


@dataclass(frozen=True)
class CrashOnce:
    """First execution kills the worker process; later ones succeed.

    The sentinel file lives on disk because the retry lands in a fresh
    process — no in-memory flag survives ``os._exit``.
    """

    sentinel: str
    value: int


def crash_once_cell(config: CrashOnce, seed: int):
    if not os.path.exists(config.sentinel):
        with open(config.sentinel, "w") as fh:
            fh.write("crashed")
        os._exit(3)  # abrupt death: no exception, no cleanup
    return (config.value, seed)


@dataclass(frozen=True)
class Work:
    value: int


def identity_cell(config: Work, seed: int):
    return (config.value, seed)


def failing_cell(config: Work, seed: int):
    raise ValueError(f"bad value {config.value}")


def _fast_runner(jobs: int) -> Runner:
    runner = Runner(jobs=jobs)
    runner.retry_backoff_s = 0.0
    return runner


class TestWorkerDeathRetry:
    def test_crash_once_worker_is_retried(self, tmp_path):
        cells = [
            Cell(crash_once_cell,
                 CrashOnce(str(tmp_path / "sentinel"), value=7), seed=1),
            Cell(identity_cell, Work(1), seed=2),
            Cell(identity_cell, Work(2), seed=3),
        ]
        runner = _fast_runner(jobs=2)
        assert runner.run(cells) == [(7, 1), (1, 2), (2, 3)]
        assert runner.stats.pool_retries >= 1

    def test_results_match_serial_after_retry(self, tmp_path):
        crash = Cell(crash_once_cell,
                     CrashOnce(str(tmp_path / "s2"), value=0), seed=0)
        cells = [crash] + [Cell(identity_cell, Work(i)) for i in range(1, 5)]
        got = _fast_runner(jobs=3).run(cells)
        assert got == [(0, 0)] + [(i, 0) for i in range(1, 5)]

    def test_deterministic_failure_still_fails_fast(self):
        cells = [Cell(identity_cell, Work(0)),
                 Cell(failing_cell, Work(-5), label="boom"),
                 Cell(identity_cell, Work(2))]
        runner = _fast_runner(jobs=2)
        with pytest.raises(CellError) as err:
            runner.run(cells)
        assert err.value.index == 1
        assert "boom" in str(err.value)
        assert runner.stats.pool_retries == 0  # no retry wasted on it
        assert isinstance(err.value.__cause__, ValueError)


class TestSerialDegrade:
    def test_pool_creation_failure_degrades_to_serial(self, monkeypatch):
        import repro.exp.runner as runner_mod

        def no_pool(*args, **kwargs):
            raise OSError("fork forbidden")

        monkeypatch.setattr(runner_mod, "ProcessPoolExecutor", no_pool)
        cells = [Cell(identity_cell, Work(i), seed=i) for i in range(4)]
        runner = _fast_runner(jobs=4)
        assert runner.run(cells) == [(i, i) for i in range(4)]
        assert runner.stats.serial_degrades == 1

    def test_serial_degrade_still_reports_cell_errors(self, monkeypatch):
        import repro.exp.runner as runner_mod

        monkeypatch.setattr(
            runner_mod, "ProcessPoolExecutor",
            lambda *a, **k: (_ for _ in ()).throw(OSError("no pool")))
        cells = [Cell(identity_cell, Work(0)),
                 Cell(failing_cell, Work(-1), label="still named")]
        with pytest.raises(CellError) as err:
            _fast_runner(jobs=2).run(cells)
        assert err.value.index == 1
        assert "still named" in str(err.value)
