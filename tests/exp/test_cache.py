"""Result-cache behavior: hits, misses, and corruption recovery."""

from dataclasses import dataclass

import pytest

from repro.exp import CODE_SALT, Cell, ResultCache, Runner, default_cache_dir


@dataclass(frozen=True)
class Payload:
    value: int
    writes: int = 100


def compute(config: Payload, seed: int) -> int:
    return config.value * 1000 + seed


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestStore:
    def test_get_on_empty_misses(self, cache):
        hit, value = cache.get("ab" + "0" * 62)
        assert not hit and value is None
        assert cache.stats.misses == 1

    def test_put_then_get_hits(self, cache):
        key = Cell(compute, Payload(3)).key(CODE_SALT)
        cache.put(key, 42)
        hit, value = cache.get(key)
        assert hit and value == 42
        assert cache.stats.hits == 1 and cache.stats.stored == 1

    def test_none_is_a_cacheable_value(self, cache):
        key = Cell(compute, Payload(4)).key(CODE_SALT)
        cache.put(key, None)
        hit, value = cache.get(key)
        assert hit and value is None

    def test_corrupted_entry_discarded_and_recomputed(self, cache):
        cell = Cell(compute, Payload(5), seed=2)
        key = cell.key(CODE_SALT)
        cache.put(key, 5002)
        path = cache.path_for(key)
        path.write_bytes(b"not a pickle at all")

        hit, _ = cache.get(key)
        assert not hit
        assert cache.stats.discarded == 1
        assert not path.exists()  # junk entry removed

        # A runner over the same cell recomputes and restores the entry.
        runner = Runner(jobs=1, cache=cache)
        assert runner.run([cell]) == [5002]
        hit, value = cache.get(key)
        assert hit and value == 5002

    def test_truncated_entry_discarded(self, cache):
        key = Cell(compute, Payload(6)).key(CODE_SALT)
        cache.put(key, list(range(1000)))
        path = cache.path_for(key)
        path.write_bytes(path.read_bytes()[:10])
        hit, _ = cache.get(key)
        assert not hit and cache.stats.discarded == 1

    def test_foreign_salt_entry_is_a_miss(self, cache):
        # An entry physically present at this key's path but written by
        # a different code generation must not be served.
        key = Cell(compute, Payload(13)).key(CODE_SALT)
        cache.put(key, 13000)
        import pickle
        path = cache.path_for(key)
        path.write_bytes(pickle.dumps({"salt": "someone-elses", "value": 13000}))
        hit, _ = cache.get(key)
        assert not hit
        assert cache.stats.discarded == 1
        assert not path.exists()

    def test_discard_warns_exactly_once(self, cache, capsys):
        keys = [Cell(compute, Payload(v)).key(CODE_SALT) for v in (20, 21)]
        for key in keys:
            cache.put(key, 0)
            cache.path_for(key).write_bytes(b"junk")
        for key in keys:
            assert cache.get(key) == (False, None)
        err = capsys.readouterr().err
        assert err.count("discarding cache entry") == 1
        assert cache.stats.discarded == 2

    def test_clear_drops_only_this_salt(self, cache):
        other = ResultCache(cache.root, salt="other-salt")
        cache.put(Cell(compute, Payload(1)).key(CODE_SALT), 1)
        other.put(Cell(compute, Payload(1)).key("other-salt"), 2)
        assert cache.clear() == 1
        assert other.get(Cell(compute, Payload(1)).key("other-salt"))[0]


class TestKeying:
    def test_hit_on_identical_cell(self, cache):
        a = Cell(compute, Payload(7), seed=1)
        b = Cell(compute, Payload(7), seed=1, label="different label")
        cache.put(a.key(CODE_SALT), 7001)
        assert cache.get(b.key(CODE_SALT)) == (True, 7001)  # label not keyed

    def test_miss_on_config_change(self, cache):
        cache.put(Cell(compute, Payload(8)).key(CODE_SALT), 8000)
        hit, _ = cache.get(Cell(compute, Payload(8, writes=200)).key(CODE_SALT))
        assert not hit

    def test_miss_on_seed_change(self, cache):
        cache.put(Cell(compute, Payload(9), seed=0).key(CODE_SALT), 9000)
        hit, _ = cache.get(Cell(compute, Payload(9), seed=1).key(CODE_SALT))
        assert not hit

    def test_miss_on_salt_change(self, cache):
        cell = Cell(compute, Payload(10))
        cache.put(cell.key(CODE_SALT), 10000)
        hit, _ = cache.get(cell.key(CODE_SALT + "-bumped"))
        assert not hit

    def test_miss_on_function_change(self, cache):
        cache.put(Cell(compute, Payload(11)).key(CODE_SALT), 11000)
        hit, _ = cache.get(Cell(print, Payload(11)).key(CODE_SALT))
        assert not hit


class TestLocation:
    def test_env_var_overrides_default(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "override"))
        assert default_cache_dir() == tmp_path / "override"

    def test_default_under_home(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert default_cache_dir().name == "repro-ssd"

    def test_layout_salted_and_sharded(self, cache):
        key = Cell(compute, Payload(12)).key(CODE_SALT)
        path = cache.path_for(key)
        assert path.parent.name == key[:2]
        assert path.parent.parent.name == CODE_SALT
