"""Runner semantics: ordering, worker failures, jobs resolution, cache."""

from dataclasses import dataclass

import pytest

from repro.exp import Cell, CellError, ResultCache, Runner, resolve_jobs


@dataclass(frozen=True)
class Work:
    value: int


def identity_cell(config: Work, seed: int):
    return (config.value, seed)


def failing_cell(config: Work, seed: int):
    if config.value < 0:
        raise ValueError(f"bad value {config.value}")
    return config.value


class TestResolveJobs:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs() == 5

    def test_bad_env_var_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "lots")
        assert resolve_jobs() >= 1

    @pytest.mark.parametrize("jobs", [0, -4])
    def test_explicit_subunit_count_is_an_error(self, jobs):
        # A clear ValueError, not a clamp and not a pool traceback.
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            resolve_jobs(jobs)
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            Runner(jobs=jobs)

    @pytest.mark.parametrize("env", ["0", "-2"])
    def test_subunit_env_var_is_an_error(self, env, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", env)
        with pytest.raises(ValueError, match="REPRO_JOBS must be >= 1"):
            resolve_jobs()


class TestOrdering:
    def test_serial_results_in_submission_order(self):
        cells = [Cell(identity_cell, Work(i), seed=i) for i in range(6)]
        assert Runner(jobs=1).run(cells) == [(i, i) for i in range(6)]

    def test_parallel_results_in_submission_order(self):
        cells = [Cell(identity_cell, Work(i), seed=i) for i in range(6)]
        assert Runner(jobs=2).run(cells) == [(i, i) for i in range(6)]

    def test_parallel_equals_serial(self):
        cells = [Cell(identity_cell, Work(i)) for i in range(8)]
        assert Runner(jobs=3).run(cells) == Runner(jobs=1).run(cells)


class TestFailures:
    def test_serial_failure_names_the_cell(self):
        cells = [Cell(failing_cell, Work(1)),
                 Cell(failing_cell, Work(-2), label="the broken one")]
        with pytest.raises(CellError) as err:
            Runner(jobs=1).run(cells)
        assert err.value.index == 1
        assert "the broken one" in str(err.value)
        assert isinstance(err.value.__cause__, ValueError)

    def test_parallel_failure_names_the_cell(self):
        cells = [Cell(failing_cell, Work(i)) for i in range(4)]
        cells[2] = Cell(failing_cell, Work(-9), label="boom")
        with pytest.raises(CellError) as err:
            Runner(jobs=2).run(cells)
        assert err.value.index == 2
        assert "boom" in str(err.value)

    def test_lowest_failing_index_reported(self):
        cells = [Cell(failing_cell, Work(-1), label="first"),
                 Cell(failing_cell, Work(-2), label="second")]
        with pytest.raises(CellError) as err:
            Runner(jobs=2).run(cells)
        assert err.value.index == 0


class TestCaching:
    def test_second_run_is_all_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        cells = [Cell(identity_cell, Work(i)) for i in range(4)]
        runner = Runner(jobs=1, cache=cache)
        first = runner.run(cells)
        assert runner.stats.executed == 4

        rerun = Runner(jobs=1, cache=ResultCache(tmp_path))
        assert rerun.run(cells) == first
        assert rerun.stats.executed == 0
        assert rerun.cache.stats.hits == 4

    def test_uncacheable_cells_always_execute(self, tmp_path):
        cache = ResultCache(tmp_path)
        cells = [Cell(identity_cell, Work(1), cacheable=False)]
        Runner(jobs=1, cache=cache).run(cells)
        rerun = Runner(jobs=1, cache=ResultCache(tmp_path))
        rerun.run(cells)
        assert rerun.stats.executed == 1
        assert rerun.cache.stats.hits == 0

    def test_partial_warm_run_executes_only_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        Runner(jobs=1, cache=cache).run([Cell(identity_cell, Work(0))])
        runner = Runner(jobs=1, cache=ResultCache(tmp_path))
        out = runner.run([Cell(identity_cell, Work(0)),
                          Cell(identity_cell, Work(1))])
        assert out == [(0, 0), (1, 0)]
        assert runner.stats.executed == 1
        assert runner.cache.stats.hits == 1

    def test_describe_mentions_cache(self, tmp_path):
        runner = Runner(jobs=1, cache=ResultCache(tmp_path))
        runner.run([Cell(identity_cell, Work(1))])
        text = runner.describe()
        assert "1 cells" in text and "cache" in text

    def test_describe_without_cache(self):
        assert "cache disabled" in Runner(jobs=1).describe()


class TestRealCells:
    """End-to-end: simulator cells through the parallel pool."""

    def test_churn_cell_parallel_equals_serial(self, tmp_path):
        from repro.exp import ChurnCell, run_churn_cell
        from repro.ssd.presets import tiny

        cells = [
            Cell(run_churn_cell,
                 ChurnCell(config=tiny().with_changes(gc_policy=policy),
                           writes=1500),
                 seed=3, label=f"gc:{policy}")
            for policy in ("greedy", "random")
        ]
        serial = Runner(jobs=1).run(cells)
        parallel = Runner(jobs=2, cache=ResultCache(tmp_path)).run(cells)
        assert serial == parallel
