"""Runner hardening: the wall-clock watchdog and keep-going isolation.

A hung cell (infinite loop, deadlocked native call) never raises and
never returns — without a watchdog it wedges the whole study.  With
``timeout_s`` set, a wait window in which *no* future settles kills the
workers, retries the suspects once on a fresh pool, and quarantines a
repeat offender with a named :class:`CellTimeout`.  ``keep_going``
turns cell failures (and quarantines) into ``None`` results plus
recorded :class:`CellError` entries instead of aborting the run.
"""

import time
from dataclasses import dataclass

import pytest

from repro.exp import Cell, CellError, CellTimeout, ResultCache, Runner


@dataclass(frozen=True)
class Work:
    value: int


def identity_cell(config: Work, seed: int):
    return (config.value, seed)


def failing_cell(config: Work, seed: int):
    raise ValueError(f"bad value {config.value}")


def hang_cell(config: Work, seed: int):
    # A hang, not a slow cell: longer than any test's patience.  The
    # watchdog kills the host process, so the sleep never finishes.
    time.sleep(300)
    return (config.value, seed)


def _watchdog_runner(jobs: int, timeout_s: float = 0.8,
                     keep_going: bool = False, cache=None) -> Runner:
    runner = Runner(jobs=jobs, cache=cache, timeout_s=timeout_s,
                    keep_going=keep_going)
    runner.retry_backoff_s = 0.0
    return runner


class TestWatchdog:
    def test_hung_cell_is_quarantined_keep_going(self):
        cells = [Cell(identity_cell, Work(1), seed=1),
                 Cell(hang_cell, Work(2), label="wedge"),
                 Cell(identity_cell, Work(3), seed=3)]
        runner = _watchdog_runner(jobs=2, keep_going=True)
        results = runner.run(cells)
        assert results[0] == (1, 1) and results[2] == (3, 3)
        assert results[1] is None
        assert runner.stats.timeouts >= Runner.max_cell_timeouts
        assert runner.stats.quarantined == 1
        [error] = runner.errors
        assert error.index == 1
        assert isinstance(error.__cause__, CellTimeout) or \
            "watchdog" in str(error)

    def test_hung_cell_raises_without_keep_going(self):
        cells = [Cell(hang_cell, Work(0), label="wedge"),
                 Cell(identity_cell, Work(1))]
        runner = _watchdog_runner(jobs=2)
        with pytest.raises(CellError, match="wedge"):
            runner.run(cells)
        assert runner.stats.timeouts >= 1

    def test_quick_cells_never_trip_the_watchdog(self):
        cells = [Cell(identity_cell, Work(i), seed=i) for i in range(6)]
        runner = _watchdog_runner(jobs=2, timeout_s=30.0)
        assert runner.run(cells) == [(i, i) for i in range(6)]
        assert runner.stats.timeouts == 0
        assert runner.errors == []

    def test_timeout_validation(self):
        with pytest.raises(ValueError):
            Runner(jobs=1, timeout_s=0)
        with pytest.raises(ValueError):
            Runner(jobs=1, timeout_s=-1.5)


class TestKeepGoing:
    def test_serial_failure_isolated(self):
        cells = [Cell(identity_cell, Work(0)),
                 Cell(failing_cell, Work(-5), label="boom",
                      repro="repro-ssd latency --seed 5"),
                 Cell(identity_cell, Work(2))]
        runner = Runner(jobs=1, keep_going=True)
        results = runner.run(cells)
        assert results == [(0, 0), None, (2, 0)]
        [error] = runner.errors
        assert error.index == 1
        assert "boom" in str(error)
        assert "cell key" in str(error)
        assert "rerun standalone: repro-ssd latency --seed 5" in str(error)

    def test_parallel_failure_isolated(self):
        cells = [Cell(identity_cell, Work(i)) for i in range(4)] + \
            [Cell(failing_cell, Work(9), label="boom")]
        runner = Runner(jobs=2, keep_going=True)
        runner.retry_backoff_s = 0.0
        results = runner.run(cells)
        assert results[:4] == [(i, 0) for i in range(4)]
        assert results[4] is None
        assert [e.index for e in runner.errors] == [4]

    def test_failed_cells_are_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        cells = [Cell(identity_cell, Work(1)),
                 Cell(failing_cell, Work(2), label="boom")]
        runner = Runner(jobs=1, cache=cache, keep_going=True)
        runner.run(cells)
        assert cache.get(cells[0].key(runner.salt)) == (True, (1, 0))
        hit, _ = cache.get(cells[1].key(runner.salt))
        assert not hit

    def test_without_keep_going_still_fails_fast(self):
        cells = [Cell(failing_cell, Work(1), label="boom")]
        with pytest.raises(CellError, match="boom"):
            Runner(jobs=1).run(cells)


class TestDescribe:
    def test_incidents_surface(self):
        runner = _watchdog_runner(jobs=2, keep_going=True)
        runner.run([Cell(hang_cell, Work(0), label="wedge"),
                    Cell(identity_cell, Work(1))])
        text = runner.describe()
        assert "watchdog timeouts" in text
        assert "quarantined" in text
        assert "cache hits" in text
