"""Unit tests for the observability primitives (events + sinks)."""

import io
import json

import pytest

from repro.obs import (
    EVENT_TYPES,
    NULL_SINK,
    CacheStall,
    CounterSink,
    FlashOpIssued,
    GcStarted,
    HistogramSink,
    HostRequest,
    JsonlSink,
    NullSink,
    TeeSink,
    TraceSink,
    load_trace,
)


class TestEvents:
    def test_to_record_is_flat_and_named(self):
        event = GcStarted(victim=7, valid_sectors=12, trigger="foreground",
                          policy="greedy")
        record = event.to_record()
        assert record == {"event": "gc_started", "victim": 7,
                          "valid_sectors": 12, "trigger": "foreground",
                          "policy": "greedy"}

    def test_metric_value(self):
        assert CacheStall(stall_ns=500, occupied=8, capacity=8).metric_value() == 500.0
        # Counter-mode host requests leave latency at the -1 sentinel,
        # which is "no metric", not a value of -1.
        assert HostRequest(kind="write", lba=0, nsectors=1).metric_value() is None
        assert HostRequest(kind="write", lba=0, nsectors=1,
                           latency_ns=9000).metric_value() == 9000.0

    def test_registry_covers_all_names(self):
        assert "gc_started" in EVENT_TYPES
        assert "flash_op" in EVENT_TYPES
        assert all(cls.NAME == name for name, cls in EVENT_TYPES.items())

    def test_records_are_json_serializable(self):
        import dataclasses

        for cls in EVENT_TYPES.values():
            # Build with dummy values of the right type.
            kwargs = {}
            for f in dataclasses.fields(cls):
                if f.type == "str":
                    kwargs[f.name] = "x"
                elif f.type == "bool":
                    kwargs[f.name] = False
                else:
                    kwargs[f.name] = 0
            json.dumps(cls(**kwargs).to_record())


class TestNullSink:
    def test_disabled_and_inert(self):
        assert not NULL_SINK.enabled
        NULL_SINK.emit(GcStarted(victim=0, valid_sectors=0, trigger="idle"))
        NULL_SINK.close()

    def test_protocol_conformance(self):
        for sink in (NullSink(), CounterSink(), HistogramSink(),
                     JsonlSink(io.StringIO()), TeeSink()):
            assert isinstance(sink, TraceSink)


class TestCounterSink:
    def test_counts_and_metric_totals(self):
        sink = CounterSink()
        sink.emit(CacheStall(stall_ns=100, occupied=4, capacity=8))
        sink.emit(CacheStall(stall_ns=250, occupied=8, capacity=8))
        sink.emit(GcStarted(victim=3, valid_sectors=5, trigger="foreground"))
        assert sink.count("cache_stall") == 2
        assert sink.total("cache_stall") == 350.0
        assert sink.count("gc_started") == 1
        assert sink.count("missing") == 0

    def test_summarize_rows(self):
        sink = CounterSink()
        sink.emit(FlashOpIssued(kind="program", target=1, reason="host",
                                nbytes=8192))
        rows = sink.summarize()
        assert rows == [["flash_op", 1, 8192.0]]


class TestHistogramSink:
    def test_percentile_summary(self):
        sink = HistogramSink()
        for value in range(1, 101):
            sink.emit(CacheStall(stall_ns=value, occupied=0, capacity=8))
        summary = sink.summary_of("cache_stall")
        assert summary.count == 100
        assert summary.mean == pytest.approx(50.5)
        assert summary.p50 == pytest.approx(50.5)
        assert summary.p99 == pytest.approx(99.01)
        assert summary.max == 100.0

    def test_summarize_handles_metricless_events(self):
        from repro.obs import CacheAdmit

        sink = HistogramSink()
        sink.emit(CacheAdmit(lpn=1, absorbed=False))
        rows = sink.summarize()
        assert rows == [["cache_admit", 1, "-", "-", "-", "-"]]


class TestJsonlSink:
    def test_writes_one_line_per_event(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink.emit(GcStarted(victim=1, valid_sectors=2, trigger="idle"))
            sink.emit(FlashOpIssued(kind="erase", target=1, reason="gc",
                                    nbytes=0))
            assert sink.events_written == 2
        records = load_trace(path)
        assert [r["event"] for r in records] == ["gc_started", "flash_op"]
        assert records[0]["victim"] == 1

    def test_accepts_open_file_object(self):
        buf = io.StringIO()
        sink = JsonlSink(buf)
        sink.emit(GcStarted(victim=1, valid_sectors=0, trigger="idle"))
        sink.close()  # must not close a caller-owned stream
        assert not buf.closed
        assert json.loads(buf.getvalue())["event"] == "gc_started"

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink.emit(GcStarted(victim=0, valid_sectors=0, trigger="idle"))
        assert path.exists()


class TestTeeSink:
    def test_fans_out(self):
        a, b = CounterSink(), CounterSink()
        tee = TeeSink(a, b)
        tee.emit(GcStarted(victim=0, valid_sectors=0, trigger="idle"))
        assert a.count("gc_started") == b.count("gc_started") == 1

    def test_skips_disabled_children(self):
        tee = TeeSink(NullSink(), CounterSink())
        assert len(tee.sinks) == 1
