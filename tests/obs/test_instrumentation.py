"""End-to-end instrumentation tests: drive real devices with sinks
attached and cross-check the event stream against the FTL's own
statistics (the aggregates the events must explain)."""

import numpy as np
import pytest

from repro.obs import NULL_SINK, CounterSink
from repro.ssd.device import SimulatedSSD
from repro.ssd.presets import evo840_like, tiny
from repro.ssd.timed import TimedSSD
from repro.workloads.engine import run_counter, run_timed
from repro.workloads.patterns import Region
from repro.workloads.spec import JobSpec


def churn_job(device, io_count=4000, seed=7):
    return JobSpec("churn", "randwrite", Region(0, device.num_sectors),
                   bs_sectors=1, io_count=io_count, iodepth=4, seed=seed)


class TestCounterModeInstrumentation:
    @pytest.fixture()
    def traced(self):
        device = SimulatedSSD(tiny())
        sink = CounterSink()
        run_counter(device, [churn_job(device)], sink=sink)
        return device, sink

    def test_host_requests_match_workload(self, traced):
        device, sink = traced
        # The job's 4000 writes plus run_counter's end-of-run FLUSH
        # (flush is a host command and is traced like one).
        assert sink.count("host_request") == 4000 + 1

    def test_cache_admits_match_sector_writes(self, traced):
        device, sink = traced
        assert sink.count("cache_admit") == device.ftl.stats.host_sector_writes

    def test_gc_events_match_stats(self, traced):
        device, sink = traced
        assert sink.count("gc_started") == device.ftl.stats.gc_invocations
        assert sink.count("gc_finished") == device.ftl.stats.gc_invocations
        assert sink.count("gc_victim_selected") >= sink.count("gc_started")
        assert sink.total("gc_finished") == device.ftl.stats.gc_migrated_sectors

    def test_flash_ops_match_smart_counts(self, traced):
        device, sink = traced
        smart = device.smart
        expected = (smart.host_program_pages + smart.ftl_program_pages
                    + smart.read_pages + smart.erase_count)
        assert sink.count("flash_op") == expected

    def test_detach_restores_fast_path(self, traced):
        device, sink = traced
        device.attach_sink(NULL_SINK)
        before = sink.count("flash_op")
        device.write_sectors(0, 8)
        device.flush()
        assert sink.count("flash_op") == before
        assert device.ftl.obs is NULL_SINK
        assert device.ftl.cache.obs is NULL_SINK


class TestTimedModeInstrumentation:
    def test_host_requests_carry_latency(self):
        device = TimedSSD(tiny())
        sink = CounterSink()
        run_timed(device, [churn_job(device, io_count=1500)], sink=sink)
        assert sink.count("host_request") == 1500
        # Total latency in the trace equals the device's own record.
        total_latency = sum(r.latency_ns for r in device.completed
                            if r.kind == "write")
        assert sink.total("host_request") == total_latency

    def test_cache_stalls_emitted_under_pressure(self):
        device = TimedSSD(tiny())
        sink = CounterSink()
        run_timed(device, [churn_job(device, io_count=1500)], sink=sink)
        assert sink.count("cache_stall") > 0
        # Stall is only ever part of a write's latency.
        assert sink.total("cache_stall") <= sink.total("host_request")

    def test_flush_is_traced(self):
        device = TimedSSD(tiny())
        sink = CounterSink()
        device.attach_sink(sink)
        device.submit("write", 0, 4, at_ns=0)
        device.flush()
        kinds = sink.counts
        assert kinds["host_request"] >= 2  # the write and the flush


class TestSubsystemEvents:
    def test_pslc_drains_emit_slc_migration(self):
        device = SimulatedSSD(evo840_like(scale=4))
        sink = CounterSink()
        device.attach_sink(sink)
        rng = np.random.default_rng(1)
        for _ in range(3000):
            device.write_sectors(int(rng.integers(device.num_sectors)), 1)
        device.flush()
        assert sink.count("slc_migration") == device.ftl.stats.pslc_drains
        assert sink.count("slc_migration") > 0

    def test_wear_leveling_emits_rebalance(self):
        config = tiny().with_changes(wear_leveling=True,
                                     wear_leveling_delta=2)
        device = SimulatedSSD(config)
        sink = CounterSink()
        device.attach_sink(sink)
        rng = np.random.default_rng(2)
        # Hot/cold split: a few LPNs take all traffic so erase counts
        # diverge, then idle maintenance must rebalance.
        hot = max(1, device.num_sectors // 8)
        for lba in range(0, device.num_sectors, 4):
            device.write_sectors(lba, min(4, device.num_sectors - lba))
        for round_ in range(40):
            for _ in range(200):
                device.write_sectors(int(rng.integers(hot)), 1)
            device.idle(max_blocks=4)
        assert sink.count("wear_rebalance") == device.ftl.leveler.migrations
        assert sink.count("wear_rebalance") > 0

    def test_idle_gc_tagged_as_idle_trigger(self):
        from repro.obs.events import GcStarted

        class Capture(CounterSink):
            def __init__(self):
                super().__init__()
                self.triggers = set()

            def emit(self, event):
                super().emit(event)
                if isinstance(event, GcStarted):
                    self.triggers.add(event.trigger)

        device = SimulatedSSD(tiny())
        sink = Capture()
        device.attach_sink(sink)
        rng = np.random.default_rng(3)
        for _ in range(6000):
            device.write_sectors(int(rng.integers(device.num_sectors)), 1)
        device.idle(max_blocks=8)
        assert "foreground" in sink.triggers
