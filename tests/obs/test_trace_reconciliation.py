"""The acceptance check behind the Fig 3 companion figure: a timed
trace's per-event GC-stall record must reconcile exactly with the
latency distribution the run reports.

In the timed model a write's latency is, by construction,
``controller_overhead + admission_stall`` — the stall being the time
the cache waited for flush programs (driven by foreground GC) to
release space.  So the trace must satisfy:

* per-request ``stall_ns`` sums to the same total as the standalone
  ``cache_stall`` events,
* ``latency - stall`` is the uniform controller overhead for every
  write,
* the p99 inflation over the no-load latency equals the p99 stall.
"""

import numpy as np
import pytest

from repro.obs import (
    JsonlSink,
    attribute_tail,
    load_trace,
    stall_reconciliation,
)
from repro.ssd.presets import tiny
from repro.ssd.timed import TimedSSD
from repro.workloads.engine import run_timed
from repro.workloads.patterns import Region
from repro.workloads.spec import JobSpec


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    path = tmp_path_factory.mktemp("trace") / "run.jsonl"
    device = TimedSSD(tiny())
    job = JobSpec("rw", "randwrite", Region(0, device.num_sectors),
                  bs_sectors=1, io_count=3000, iodepth=4, seed=11)
    with JsonlSink(path) as sink:
        run_timed(device, [job], sink=sink)
    return device, load_trace(path)


class TestStallReconciliation:
    def test_trace_parses_and_is_nonempty(self, traced_run):
        _, records = traced_run
        assert len(records) > 3000
        assert all("event" in r for r in records)

    def test_per_request_stall_equals_per_event_stall(self, traced_run):
        _, records = traced_run
        recon = stall_reconciliation(records)
        assert recon["stalled_writes"] > 0
        assert recon["request_stall_ns"] == recon["event_stall_ns"]

    def test_latency_decomposes_into_overhead_plus_stall(self, traced_run):
        device, records = traced_run
        recon = stall_reconciliation(records)
        assert recon["overhead_uniform"]
        assert recon["overhead_ns"] == device.controller_overhead_ns

    def test_p99_inflation_matches_p99_stall(self, traced_run):
        device, records = traced_run
        writes = [r for r in records
                  if r["event"] == "host_request" and r["kind"] == "write"]
        latencies = np.asarray([r["latency_ns"] for r in writes])
        stalls = np.asarray([r["stall_ns"] for r in writes])
        p99_inflation = (np.percentile(latencies, 99)
                         - device.controller_overhead_ns)
        assert np.percentile(stalls, 99) == pytest.approx(p99_inflation)

    def test_tail_attribution_buckets_cover_all_writes(self, traced_run):
        _, records = traced_run
        buckets = attribute_tail(records)
        assert sum(b.requests for b in buckets) == 3000
        # The tail buckets are stall-dominated; the body is not.
        assert buckets[-1].stall_share > 0.9
        assert buckets[0].stall_share < buckets[-1].stall_share

    def test_stall_never_exceeds_latency(self, traced_run):
        _, records = traced_run
        for r in records:
            if r["event"] == "host_request" and r["kind"] == "write":
                assert 0 <= r["stall_ns"] <= r["latency_ns"]
