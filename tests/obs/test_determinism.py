"""Determinism: the same JobSpec seed must produce a byte-identical
JSONL trace and identical summary statistics across runs, in both
execution modes.  This is what makes traces diffable across PRs — any
fidelity change shows up as a trace diff."""

import numpy as np

from repro.obs import CounterSink, JsonlSink, TeeSink
from repro.ssd.device import SimulatedSSD
from repro.ssd.presets import tiny
from repro.ssd.timed import TimedSSD
from repro.workloads.engine import run_counter, run_timed
from repro.workloads.patterns import Region
from repro.workloads.spec import JobSpec


def _trace_counter(path, seed):
    device = SimulatedSSD(tiny())
    job = JobSpec("det", "randwrite", Region(0, device.num_sectors),
                  bs_sectors=1, io_count=2500, seed=seed)
    counter = CounterSink()
    with JsonlSink(path) as jsonl:
        result = run_counter(device, [job], sink=TeeSink(jsonl, counter))
    return result, counter


def _trace_timed(path, seed):
    device = TimedSSD(tiny())
    job = JobSpec("det", "randwrite", Region(0, device.num_sectors),
                  bs_sectors=1, io_count=2000, iodepth=4, seed=seed)
    counter = CounterSink()
    with JsonlSink(path) as jsonl:
        result = run_timed(device, [job], sink=TeeSink(jsonl, counter))
    return result, counter


class TestCounterModeDeterminism:
    def test_identical_trace_bytes_and_stats(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        result_a, counter_a = _trace_counter(a, seed=42)
        result_b, counter_b = _trace_counter(b, seed=42)
        assert a.read_bytes() == b.read_bytes()
        assert len(a.read_bytes()) > 0
        assert counter_a.counts == counter_b.counts
        assert counter_a.metric_totals == counter_b.metric_totals
        assert result_a.waf == result_b.waf

    def test_different_seed_different_trace(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        _trace_counter(a, seed=42)
        _trace_counter(b, seed=43)
        assert a.read_bytes() != b.read_bytes()


class TestTimedModeDeterminism:
    def test_identical_trace_bytes_and_stats(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        result_a, counter_a = _trace_timed(a, seed=42)
        result_b, counter_b = _trace_timed(b, seed=42)
        assert a.read_bytes() == b.read_bytes()
        assert len(a.read_bytes()) > 0
        assert counter_a.counts == counter_b.counts
        assert counter_a.metric_totals == counter_b.metric_totals
        lat_a = result_a.jobs["det"].latencies_us
        lat_b = result_b.jobs["det"].latencies_us
        assert np.array_equal(lat_a, lat_b)

    def test_different_seed_different_trace(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        _trace_timed(a, seed=42)
        _trace_timed(b, seed=43)
        assert a.read_bytes() != b.read_bytes()
