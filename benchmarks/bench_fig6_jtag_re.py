"""Fig 6 / §3.2: the JTAG reverse-engineering study of the 840-EVO-like
device.

Paper findings reproduced and asserted: a tri-core controller with one
host-interface core and two flash cores splitting work by the LBA's
least-significant bit; a translation map of eight arrays occupying more
DRAM than the theoretical minimum; map chunks covering ~117.5 MB of
logical space loaded on demand; and a hashed index in front of the
pSLC (TurboWrite) buffer.
"""

import pytest

from benchmarks.conftest import run_once
from repro.core.jtag.discovery import run_full_study
from repro.ssd.firmware.device import IDCODE, HackableSSD


@pytest.mark.benchmark(group="fig6")
def test_fig6_full_jtag_study(benchmark, figure_output):
    def experiment():
        device = HackableSSD(scale=1)
        return device, run_full_study(device, expected_idcode=IDCODE)

    device, report = run_once(benchmark, experiment)
    figure_output(
        "fig6_jtag_study",
        "Fig 6 / §3.2 — JTAG reverse-engineering findings",
        ["finding", "value"],
        report.rows(),
    )

    # Tri-core roles and the LBA-LSB split.
    assert report.roles.host_interface_core == 0
    assert report.roles.split_by_lsb
    assert report.firmware.lsb_dispatch_sections

    # Translation map: eight arrays, lba % 8 select, verified layout.
    assert report.map.num_arrays == 8
    assert report.map.select_modulus == 8
    assert report.map.entries_fit
    # "the mapping table occupies [more] than theoretically required".
    assert report.map.measured_map_bytes > report.map.theoretical_map_bytes
    assert report.map.entry_bits_used < 8 * report.map.entry_bytes

    # Demand-loaded chunks covering ~117.5 MB of logical space.
    assert report.chunks.demand_loading
    chunk_mib = report.chunks.chunk_bytes_logical / 2**20
    assert chunk_mib == pytest.approx(117.5, rel=0.05)
    assert report.chunks.eviction_observed

    # The pSLC buffer's hashed index.
    assert report.pslc.found
    assert report.pslc.looks_hashed

    # And the device itself matches what was discovered.
    assert report.map.array_bases == list(device.memory_map.map_array_bases)
