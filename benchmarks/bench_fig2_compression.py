"""Fig 2: flash writes per OLTP transaction across intra-SSD compression
schemes, normalized to re-bp32.

Paper shape: for highly compressible data, schemes spread up to 156 %
above the best; the spread collapses for incompressible data.
"""

import pytest

from benchmarks.conftest import run_once
from repro.ssd.compression import make_scheme
from repro.workloads.compressibility import REGIMES, CompressibilityModel
from repro.workloads.oltp import OltpWorkload, flash_writes_per_transaction

TRANSACTIONS = 3000
SCHEMES = ["re-bp32", "compact", "fixed", "chunk4", "none"]


def measure(regime: str) -> dict[str, float]:
    rates = {}
    for name in SCHEMES:
        rates[name] = flash_writes_per_transaction(
            make_scheme(name),
            OltpWorkload(seed=1),
            CompressibilityModel(REGIMES[regime], seed=1),
            TRANSACTIONS,
        )
    return rates


@pytest.mark.benchmark(group="fig2")
def test_fig2_compression_schemes(benchmark, figure_output):
    rates = run_once(benchmark, lambda: measure("high"))
    baseline = rates["re-bp32"]
    rows = [
        [name, round(rates[name], 3), round(rates[name] / baseline, 3)]
        for name in SCHEMES
    ]
    figure_output(
        "fig2_compression",
        "Fig 2 — flash writes per OLTP transaction (highly compressible)",
        ["scheme", "writes/txn", "normalized to re-bp32"],
        rows,
    )
    normalized = {name: rates[name] / baseline for name in SCHEMES}
    # Paper shape: the worst compressing scheme sits ~2.5x above the
    # baseline ("up to 156% more writes"), and re-bp32 is the best.
    worst_compressing = max(normalized[n] for n in SCHEMES if n != "none")
    assert 2.0 <= worst_compressing <= 3.2
    assert all(normalized[name] >= 0.999 for name in SCHEMES)
    assert normalized["compact"] < 1.2


@pytest.mark.benchmark(group="fig2")
def test_fig2_incompressible_collapse(benchmark, figure_output):
    rates = run_once(benchmark, lambda: measure("incompressible"))
    rows = [[name, round(rates[name], 3)] for name in SCHEMES]
    figure_output(
        "fig2_incompressible",
        "Fig 2 (companion) — incompressible data",
        ["scheme", "writes/txn"],
        rows,
    )
    # Without compressible data, `none` matches the packing schemes.
    assert rates["none"] <= rates["re-bp32"] * 1.05
