"""Ablation: the full FTL policy design grid.

The registry turns the paper's three single-knob flips into a swept
cross product: GC victim policy × write-cache designation × allocation
policy — 30 design points, roughly 3× the original Fig 3 space once
the d-choices, CAT, and hot/cold stream-separation policies are
included.  Every point is an independent cell fanned out through
:class:`repro.exp.Runner`, so re-runs hit the content-addressed cache.
"""

import pytest

from benchmarks.conftest import run_once
from repro.core.modeling.policy_grid import (
    GRID_ALLOCATION_POLICIES,
    GRID_CACHE_DESIGNATIONS,
    GRID_GC_POLICIES,
    grid_rows,
    run_policy_grid,
)
from repro.exp import Runner
from repro.ssd.presets import mqsim_baseline

BS_SECTORS = 1


@pytest.mark.benchmark(group="ablation-policy-grid")
def test_ablation_policy_grid(benchmark, figure_output):
    def experiment():
        study = run_policy_grid(
            mqsim_baseline(scale=4),
            block_sizes_sectors=(BS_SECTORS,),
            io_count=2_000,
            runner=Runner(),
        )
        return study, grid_rows(study)

    study, rows = run_once(benchmark, experiment)
    figure_output(
        "ablation_policy_grid",
        "Ablation — GC x cache x allocation policy grid (4K random writes)",
        ["gc_policy", "cache_designation", "allocation", "bs_sectors",
         "mean_us", "p50_us", "p99_us", "p999_us", "max_us", "iops"],
        [[r["gc_policy"], r["cache_designation"], r["allocation"],
          r["bs_sectors"], round(r["mean_us"], 2), round(r["p50_us"], 2),
          round(r["p99_us"], 2), round(r["p999_us"], 2),
          round(r["max_us"], 2), round(r["iops"], 1)]
         for r in rows],
    )

    # Full cross product, one row per point.
    expected = (len(GRID_GC_POLICIES) * len(GRID_CACHE_DESIGNATIONS)
                * len(GRID_ALLOCATION_POLICIES))
    assert len(rows) == expected

    def p99(gc, cache, alloc):
        for r in rows:
            if (r["gc_policy"], r["cache_designation"],
                    r["allocation"]) == (gc, cache, alloc):
                return r["p99_us"]
        raise KeyError((gc, cache, alloc))

    # The registry-era policies are real design points, not aliases:
    # each lands at its own tail latency on the shared baseline axis.
    new_points = {
        "d_choices": p99("d_choices", "data", "CWDP"),
        "cat": p99("cat", "data", "CWDP"),
        "hotcold": p99("greedy", "data", "hotcold"),
    }
    assert len(set(new_points.values())) == len(new_points), new_points

    # The paper's headline survives the bigger grid: the design space
    # spreads p99 while every point would look "validated" on means.
    assert study.p99_spread(BS_SECTORS) > 1.5
