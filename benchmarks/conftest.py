"""Shared benchmark plumbing.

Every bench regenerates one of the paper's tables or figures: it runs the
experiment once under pytest-benchmark (pedantic, single round — these
are experiments, not microbenchmarks), prints the figure's rows, writes
them to ``bench_results/<name>.csv``, and asserts the paper's qualitative
shape so the suite doubles as a regression check on the reproduction.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "bench_results"


@pytest.fixture
def figure_output():
    """Print a figure table and persist it as CSV."""
    from repro.analysis.report import format_table, write_csv

    def emit(name: str, title: str, headers, rows):
        text = format_table(headers, rows, title=title)
        print("\n" + text)
        write_csv(RESULTS_DIR / f"{name}.csv", headers, rows)
        return text

    return emit


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
