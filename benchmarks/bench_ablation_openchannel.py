"""Ablation: open-channel + host FTL vs. black-box firmware FTL.

The paper's §1 upper bound: "open-channel SSDs expose the FTL logic to
the host, yielding highly predictable I/O performance with perfect
scheduling decisions".  Same flash geometry, same timing, same random
overwrite workload at GC steady state:

* the black-box drive pays firmware-timed foreground GC storms in its
  tail;
* the host FTL — which can see the geometry and *choose when reclaim
  happens* — amortizes GC into bounded slices, collapsing the tail.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.ssd.openchannel import HostFtl, OpenChannelSSD
from repro.ssd.presets import mqsim_baseline
from repro.ssd.timed import TimedSSD
from repro.workloads.engine import run_timed
from repro.workloads.patterns import Region
from repro.workloads.spec import JobSpec

CFG = mqsim_baseline(scale=4)
MEASURE = 6000


def blackbox_latencies():
    device = TimedSSD(CFG)
    rng = np.random.default_rng(4)
    span = int(device.num_sectors * 0.8)
    step = 8
    for lba in range(0, span, step):
        device.submit("write", lba, min(step, span - lba), at_ns=device.now)
    for _ in range(span // 2):
        device.submit("write", int(rng.integers(span)), 1, at_ns=device.now)
    device.quiesce()
    device.completed.clear()
    job = JobSpec("probe", "randwrite", Region(0, span), io_count=MEASURE,
                  iodepth=1, seed=9)
    result = run_timed(device, [job])
    return result.jobs["probe"].latencies_us


def openchannel_latencies():
    device = OpenChannelSSD(CFG.geometry, CFG.timing_name)
    host = HostFtl(device, op_ratio=1 - CFG.logical_sectors
                   / (CFG.geometry.capacity_bytes // CFG.geometry.sector_size),
                   gc_step_pages=1)
    rng = np.random.default_rng(4)
    span = int(host.num_lpns * 0.8)
    now = 0
    for lpn in range(span):
        now = max(now, host.write(lpn, now))
    for _ in range(span // 2):
        now = max(now, host.write(int(rng.integers(span)), now))
    rng2 = np.random.default_rng(9)
    latencies = []
    for _ in range(MEASURE):
        done = host.write(int(rng2.integers(span)), now)
        latencies.append((done - now) / 1000)
        now = max(now, done)
    assert host.stats.erases > 0  # GC really ran during measurement era
    return np.asarray(latencies)


@pytest.mark.benchmark(group="ablation-openchannel")
def test_openchannel_transparency_bound(benchmark, figure_output):
    def experiment():
        return blackbox_latencies(), openchannel_latencies()

    blackbox, openchannel = run_once(benchmark, experiment)
    rows = []
    for name, lat in (("black-box FTL", blackbox),
                      ("open-channel + host FTL", openchannel)):
        p50, p99, p999 = np.percentile(lat, [50, 99, 99.9])
        rows.append([name, round(float(p50), 1), round(float(p99), 1),
                     round(float(p999), 1), round(float(lat.max()), 1)])
    figure_output(
        "ablation_openchannel",
        "Ablation — transparency upper bound (same flash, same workload)",
        ["configuration", "p50 (us)", "p99 (us)", "p99.9 (us)", "max (us)"],
        rows,
    )
    bb999 = float(np.percentile(blackbox, 99.9))
    oc999 = float(np.percentile(openchannel, 99.9))
    # The host-managed device's worst cases are far tighter.
    assert oc999 < bb999 / 3
    assert float(openchannel.max()) < float(blackbox.max())
