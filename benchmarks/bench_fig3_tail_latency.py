"""Fig 3 / §2.1: 99th-percentile random-write latencies across FTL
variants, plus the MQSim-margin mean comparison.

Paper shape: flipping any of three basic FTL design knobs (GC victim
selection, write-cache designation, page allocation) moves mean
performance by an amount comparable to a simulator's validated error
margin (18 %), while 99th-percentile latencies spread by up to an order
of magnitude.
"""

import os
from pathlib import Path

import pytest

from benchmarks.conftest import run_once
from repro.core.modeling.fidelity import (
    MQSIM_ERROR_MARGIN,
    fidelity_trace_path,
    run_fidelity_study,
)
from repro.exp import Runner
from repro.ssd.presets import mqsim_baseline

BLOCK_SIZES = (1, 2, 4)  # 4, 8, 16 KB requests

#: Set REPRO_TRACE_DIR to a directory to have every measurement point
#: stream a JSONL event trace there (see repro.obs) — the trace explains
#: the tails the figure reports (GC-stall attribution per percentile).
#: Each worker writes its own per-cell trace file.
TRACE_DIR = os.environ.get("REPRO_TRACE_DIR")


def _trace_path(variant: str, bs: int) -> Path:
    return fidelity_trace_path(TRACE_DIR, variant, bs, prefix="fig3")


@pytest.fixture(scope="module")
def study():
    return run_fidelity_study(
        mqsim_baseline(scale=2),
        block_sizes_sectors=BLOCK_SIZES,
        io_count=3000,
        precondition_fraction=0.75,
        runner=Runner(),
        trace_dir=TRACE_DIR,
        trace_prefix="fig3",
    )


@pytest.mark.benchmark(group="fig3")
def test_fig3_p99_latency_spread(benchmark, figure_output, study):
    run_once(benchmark, lambda: study)  # computed once per module
    rows = []
    for bs in BLOCK_SIZES:
        for variant in study.variants():
            result = study.of(variant, bs)
            rows.append([
                f"{bs * 4}K", variant,
                round(result.summary.p50, 1),
                round(result.summary.p99, 1),
                round(result.summary.p999, 1),
                round(result.iops),
            ])
    figure_output(
        "fig3_tail_latency",
        "Fig 3 — random-write latency percentiles by FTL variant",
        ["request", "FTL variant", "p50 (us)", "p99 (us)", "p99.9 (us)", "IOPS"],
        rows,
    )
    spreads = [study.p99_spread(bs) for bs in BLOCK_SIZES]
    # Paper: up to an order of magnitude difference in p99.
    assert max(spreads) >= 2.0


@pytest.mark.benchmark(group="fig3")
def test_fig3_tail_curves(benchmark, figure_output, study):
    """The figure's actual series: worst-percentile latency curves."""
    run_once(benchmark, lambda: study)
    bs = 1
    rows = []
    for variant in study.variants():
        result = study.of(variant, bs)
        for q, value in zip(result.tail_percentiles, result.tail_values_us):
            rows.append([variant, round(float(q), 2), round(float(value), 1)])
    figure_output(
        "fig3_tail_curves",
        "Fig 3 — tail curves (4K requests), percentile vs latency",
        ["FTL variant", "percentile", "latency (us)"],
        rows,
    )
    assert rows


@pytest.mark.benchmark(group="fig3")
def test_fig3_means_near_mqsim_margin(benchmark, figure_output, study):
    """§2.1's sting: FTL-variant mean differences sit near the 18%
    fidelity margin, so 'validated' simulators cannot distinguish
    fundamentally different FTLs."""
    run_once(benchmark, lambda: study)
    rows = []
    near_margin = 0
    for bs in BLOCK_SIZES:
        for variant, diff in study.mean_divergence(bs).items():
            rows.append([f"{bs * 4}K", variant, round(diff, 3),
                         diff <= 1.5 * MQSIM_ERROR_MARGIN])
            if diff <= 1.5 * MQSIM_ERROR_MARGIN:
                near_margin += 1
    figure_output(
        "fig3_mean_divergence",
        "§2.1 — mean divergence vs baseline (MQSim margin = 0.18)",
        ["request", "FTL variant", "relative mean diff", "within ~margin"],
        rows,
    )
    # At least some fundamentally-different FTLs hide inside the margin.
    assert near_margin >= 2


@pytest.mark.skipif(not TRACE_DIR, reason="set REPRO_TRACE_DIR to enable")
@pytest.mark.benchmark(group="fig3")
def test_fig3_stall_attribution(benchmark, figure_output, study):
    """Opt-in companion figure: *why* the tails differ.  Each variant's
    trace decomposes write latency into controller overhead plus
    cache-admission stall (time waiting for GC/flush programs to free
    cache space); the stall share per percentile bucket is the paper's
    missing explanation."""
    from repro.obs import attribute_tail, load_trace, stall_reconciliation

    run_once(benchmark, lambda: study)
    rows = []
    for bs in BLOCK_SIZES:
        for variant in study.variants():
            records = load_trace(_trace_path(variant, bs))
            recon = stall_reconciliation(records)
            # The decomposition must reconcile exactly: stall recorded
            # per-request equals stall recorded per-event, and
            # latency - stall is the uniform controller overhead.
            assert recon["request_stall_ns"] == recon["event_stall_ns"]
            assert recon["overhead_uniform"]
            for bucket in attribute_tail(records):
                rows.append([f"{bs * 4}K", variant] + bucket.row())
    figure_output(
        "fig3_stall_attribution",
        "Fig 3 (companion) — write-tail stall attribution by percentile",
        ["request", "FTL variant", "bucket", "requests", "latency (ms)",
         "stall (ms)", "stall share"],
        rows,
    )
    assert rows
