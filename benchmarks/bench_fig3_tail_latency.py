"""Fig 3 / §2.1: 99th-percentile random-write latencies across FTL
variants, plus the MQSim-margin mean comparison.

Paper shape: flipping any of three basic FTL design knobs (GC victim
selection, write-cache designation, page allocation) moves mean
performance by an amount comparable to a simulator's validated error
margin (18 %), while 99th-percentile latencies spread by up to an order
of magnitude.
"""

import pytest

from benchmarks.conftest import run_once
from repro.core.modeling.fidelity import (
    MQSIM_ERROR_MARGIN,
    run_fidelity_study,
)
from repro.ssd.presets import mqsim_baseline

BLOCK_SIZES = (1, 2, 4)  # 4, 8, 16 KB requests


@pytest.fixture(scope="module")
def study():
    return run_fidelity_study(
        mqsim_baseline(scale=2),
        block_sizes_sectors=BLOCK_SIZES,
        io_count=3000,
        precondition_fraction=0.75,
    )


@pytest.mark.benchmark(group="fig3")
def test_fig3_p99_latency_spread(benchmark, figure_output, study):
    run_once(benchmark, lambda: study)  # computed once per module
    rows = []
    for bs in BLOCK_SIZES:
        for variant in study.variants():
            result = study.of(variant, bs)
            rows.append([
                f"{bs * 4}K", variant,
                round(result.summary.p50, 1),
                round(result.summary.p99, 1),
                round(result.summary.p999, 1),
                round(result.iops),
            ])
    figure_output(
        "fig3_tail_latency",
        "Fig 3 — random-write latency percentiles by FTL variant",
        ["request", "FTL variant", "p50 (us)", "p99 (us)", "p99.9 (us)", "IOPS"],
        rows,
    )
    spreads = [study.p99_spread(bs) for bs in BLOCK_SIZES]
    # Paper: up to an order of magnitude difference in p99.
    assert max(spreads) >= 2.0


@pytest.mark.benchmark(group="fig3")
def test_fig3_tail_curves(benchmark, figure_output, study):
    """The figure's actual series: worst-percentile latency curves."""
    run_once(benchmark, lambda: study)
    bs = 1
    rows = []
    for variant in study.variants():
        result = study.of(variant, bs)
        for q, value in zip(result.tail_percentiles, result.tail_values_us):
            rows.append([variant, round(float(q), 2), round(float(value), 1)])
    figure_output(
        "fig3_tail_curves",
        "Fig 3 — tail curves (4K requests), percentile vs latency",
        ["FTL variant", "percentile", "latency (us)"],
        rows,
    )
    assert rows


@pytest.mark.benchmark(group="fig3")
def test_fig3_means_near_mqsim_margin(benchmark, figure_output, study):
    """§2.1's sting: FTL-variant mean differences sit near the 18%
    fidelity margin, so 'validated' simulators cannot distinguish
    fundamentally different FTLs."""
    run_once(benchmark, lambda: study)
    rows = []
    near_margin = 0
    for bs in BLOCK_SIZES:
        for variant, diff in study.mean_divergence(bs).items():
            rows.append([f"{bs * 4}K", variant, round(diff, 3),
                         diff <= 1.5 * MQSIM_ERROR_MARGIN])
            if diff <= 1.5 * MQSIM_ERROR_MARGIN:
                near_margin += 1
    figure_output(
        "fig3_mean_divergence",
        "§2.1 — mean divergence vs baseline (MQSim margin = 0.18)",
        ["request", "FTL variant", "relative mean diff", "within ~margin"],
        rows,
    )
    # At least some fundamentally-different FTLs hide inside the margin.
    assert near_margin >= 2
