"""Ablation: analytic WAF models vs. the simulator across spare factors.

§2.1 context: *average* write amplification under uniform random traffic
is one thing SSD models genuinely can predict (Desnoyers, Hu et al., Van
Houdt) — this sweep shows the classic closed forms tracking the
simulator — while everything the rest of this repository measures
(tails, mixed-workload interference, background ops) is what they miss.
"""

import pytest

from benchmarks.conftest import run_once
from repro.core.modeling.analytic import (
    measure_steady_waf,
    waf_greedy_gc,
    waf_random_gc,
)

OP_RATIOS = (0.15, 0.25, 0.35)


@pytest.mark.benchmark(group="ablation-analytic")
def test_analytic_waf_validation(benchmark, figure_output):
    def experiment():
        out = {}
        for op in OP_RATIOS:
            for policy in ("greedy", "random"):
                out[(op, policy)] = measure_steady_waf(
                    op, policy, measure_writes=12_000
                )
        return out

    measurements = run_once(benchmark, experiment)
    rows = []
    for (op, policy), m in measurements.items():
        model = (waf_greedy_gc if policy == "greedy" else waf_random_gc)(
            m.utilization
        )
        rows.append([
            op, policy, round(m.utilization, 3),
            round(m.waf_gc, 2), round(model, 2),
            round(m.waf_gc / model, 2),
        ])
    figure_output(
        "ablation_analytic_waf",
        "Ablation — steady-state GC write amplification: simulator vs theory",
        ["OP ratio", "GC policy", "effective u", "simulated WA",
         "analytic WA", "sim/model"],
        rows,
    )
    for op in OP_RATIOS:
        greedy = measurements[(op, "greedy")]
        random_ = measurements[(op, "random")]
        # Theory's ordering holds everywhere.
        assert greedy.waf_gc < random_.waf_gc
        # Random-GC has an exact model; agreement within ~40 %.
        assert random_.waf_gc == pytest.approx(
            waf_random_gc(random_.utilization), rel=0.4
        )
        # Greedy's mean-field is an upper-ish bound for finite blocks.
        assert greedy.waf_gc <= waf_greedy_gc(greedy.utilization) * 1.15
