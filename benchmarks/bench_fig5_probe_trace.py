"""Fig 5: signal diagram of flash-chip command execution from a probed
package, plus the protocol decode behind it.

Paper shape: the trace is flat, then shows a short burst on control and
data lines, followed by a long data-only transfer in under 1 ms — a page
program's command/address input and data stages; and decoding such
traces recovers firmware behaviour (page size, timings, background ops).
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.core.probe.analyzer import HOBBYIST, TLA7000, LogicAnalyzer
from repro.core.probe.decoder import decode_trace_windows
from repro.core.probe.inference import (
    HostOpRecord,
    infer_ftl_features,
    signal_activity,
)
from repro.flash.timing import profile
from repro.ssd.presets import vertex2_like
from repro.ssd.timed import BusTap, TimedSSD


def drive_format_workload():
    """An NTFS-format-style burst of metadata writes, probed on channel 0."""
    config = vertex2_like(scale=2)
    tap = BusTap(config.geometry, profile("async"), channel=0)
    device = TimedSSD(config, bus_tap=tap)
    host_log = []
    stride = device.num_sectors // 48
    for i in range(48):
        request = device.submit("write", i * stride, 4, at_ns=device.now)
        host_log.append(HostOpRecord("write", request.submit_ns,
                                     request.complete_ns, 4))
    flush = device.flush()
    host_log.append(HostOpRecord("flush", flush.submit_ns,
                                 flush.complete_ns, 0))
    return config, tap.trace, host_log


@pytest.mark.benchmark(group="fig5")
def test_fig5_signal_diagram(benchmark, figure_output):
    config, trace, _ = run_once(benchmark, drive_format_workload)
    analyzer = LogicAnalyzer(TLA7000)
    capture = analyzer.capture_triggered(trace)
    assert capture is not None
    activity = signal_activity(capture, bins=64)
    print("\nFig 5 — probed-package signal activity "
          "('#' dense, '+' sparse, '.' idle):")
    print(activity.render())
    rows = [
        [i, round(float(c), 3), round(float(d), 3), round(float(b), 3)]
        for i, (c, d, b) in enumerate(
            zip(activity.control, activity.data, activity.busy))
    ]
    figure_output(
        "fig5_signal_activity",
        "Fig 5 — control/data/busy activity per time bin",
        ["bin", "control", "data", "busy"],
        rows,
    )
    # Paper shape: short control burst, longer data activity, and a
    # dominant busy (program) period; data bursts complete in < 1 ms.
    assert activity.control.max() > 0
    assert activity.data.max() > 0
    assert activity.busy.max() > 0.9
    data_bins = int(np.count_nonzero(activity.data > 0.05))
    ctrl_bins = int(np.count_nonzero(activity.control > 0.05))
    assert data_bins >= ctrl_bins
    page_transfer_ns = profile("async").transfer_ns(
        config.geometry.page_size
    )
    assert page_transfer_ns < 1_000_000  # the paper's "< 1 ms" burst


@pytest.mark.benchmark(group="fig5")
def test_fig5_decode_and_infer(benchmark, figure_output):
    config, trace, host_log = run_once(benchmark, drive_format_workload)
    result = decode_trace_windows(trace, LogicAnalyzer(TLA7000))
    report = infer_ftl_features(result.ops, host_log,
                                sector_size=config.geometry.sector_size)
    figure_output(
        "fig5_inference",
        "Fig 5 (companion) — FTL features inferred from the probed bus",
        ["feature", "value"],
        report.rows(),
    )
    assert report.page_size_bytes == config.geometry.page_size
    timing = profile("async")
    assert report.t_prog_us == pytest.approx(timing.program_ns / 1000, rel=0.1)
    assert report.programs > 0


@pytest.mark.benchmark(group="fig5")
def test_fig5_instrument_limits(benchmark, figure_output):
    """The '$20,000 analyzer' constraint: capability vs. decode yield."""
    _, trace, _ = run_once(benchmark, drive_format_workload)
    rows = []
    for spec in (TLA7000, HOBBYIST):
        result = decode_trace_windows(trace, LogicAnalyzer(spec))
        rows.append([
            spec.name, f"{spec.sample_rate_hz / 1e6:.0f} MHz",
            f"${spec.price_usd:,}", len(result.ops), result.stats.clean,
        ])
    figure_output(
        "fig5_instruments",
        "§3.1 — decode yield by instrument",
        ["analyzer", "sample rate", "price", "ops decoded", "clean"],
        rows,
    )
    tla_ops, hobby_ops = rows[0][3], rows[1][3]
    assert tla_ops > hobby_ops
