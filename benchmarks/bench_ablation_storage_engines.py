"""Ablation: storage-engine structure × device allocation policy.

The paper's cross-layer claim, measured: rank the allocation policies
by tail latency / WAF under the standard synthetic random-write
workload, then rank them again under a real engine structure (LSM
compaction, B-tree page churn).  The orderings disagree — the policy a
synthetic benchmark would pick is not the policy the application
actually wants — because engine maintenance traffic (sequential SSTable
writes + whole-extent trims, or cache-absorbed in-place page rewrites)
lands on the FTL nothing like uniform random writes do.

Grid: {synthetic, lsm, btree} × {CWDP, PDWC, hotcold}, one cached cell
per point, identical seeds.
"""

import pytest

from benchmarks.conftest import run_once
from repro.engines import EngineRunCell, YcsbSpec, run_engine_cell
from repro.exp import Cell, Runner, TimedJobCell, run_timed_job_cell
from repro.ssd.presets import tiny
from repro.workloads.patterns import Region
from repro.workloads.spec import JobSpec

ALLOCATIONS = ("CWDP", "PDWC", "hotcold")
WORKLOADS = ("synthetic", "lsm", "btree")
SEED = 11
IODEPTH = 4
SYNTHETIC_IO = 3_000


def _cells():
    cells = []
    for alloc in ALLOCATIONS:
        config = tiny().with_changes(allocation_scheme=alloc)
        n = config.logical_sectors
        job = JobSpec("syn", "randwrite", Region(0, n),
                      io_count=SYNTHETIC_IO, iodepth=IODEPTH, seed=SEED)
        cells.append(Cell(run_timed_job_cell, TimedJobCell(config, job),
                          seed=SEED, label=f"engines:synthetic:{alloc}"))
        spec = YcsbSpec(mix="a", records=max(16, n // 8),
                        operations=max(16, n // 8) * 10)
        for engine in ("lsm", "btree"):
            cells.append(Cell(
                run_engine_cell,
                EngineRunCell(config, engine, spec, iodepth=IODEPTH),
                seed=SEED, label=f"engines:{engine}:{alloc}"))
    return cells


def _rows(results):
    """One row per grid point: (workload, alloc, metrics...)."""
    rows = {}
    index = 0
    for alloc in ALLOCATIONS:
        run = results[index]
        job = run.jobs["syn"]
        rows[("synthetic", alloc)] = {
            "requests": job.requests,
            "p50_us": job.percentile_us(50),
            "p99_us": job.percentile_us(99),
            "iops": job.iops,
            "device_waf": run.waf,
            "engine_waf": 0.0,
            "maintenance_ops": 0,
        }
        for offset, engine in enumerate(("lsm", "btree")):
            r = results[index + 1 + offset]
            rows[(engine, alloc)] = {
                "requests": r.requests,
                "p50_us": r.p50_us,
                "p99_us": r.p99_us,
                "iops": r.iops,
                "device_waf": r.device_waf,
                "engine_waf": r.engine_waf,
                "maintenance_ops": r.maintenance_ops,
            }
            assert r.read_errors == 0, (engine, alloc, r.read_errors)
        index += 3
    return rows


def _ranks(rows, workload, metric):
    """Allocation -> rank (0 = best) under one workload and metric.
    Ties share the rank (count of strictly better policies)."""
    values = {a: round(rows[(workload, a)][metric], 3) for a in ALLOCATIONS}
    return {a: sum(1 for other in ALLOCATIONS if values[other] < values[a])
            for a in ALLOCATIONS}


@pytest.mark.benchmark(group="ablation-storage-engines")
def test_ablation_storage_engines(benchmark, figure_output):
    def experiment():
        return Runner().run(_cells())

    results = run_once(benchmark, experiment)
    rows = _rows(results)

    baseline_p99 = _ranks(rows, "synthetic", "p99_us")
    baseline_waf = _ranks(rows, "synthetic", "device_waf")
    table = []
    flipped = 0
    for workload in WORKLOADS:
        rank_p99 = _ranks(rows, workload, "p99_us")
        rank_waf = _ranks(rows, workload, "device_waf")
        for alloc in ALLOCATIONS:
            r = rows[(workload, alloc)]
            differs = (workload != "synthetic"
                       and (rank_p99[alloc] != baseline_p99[alloc]
                            or rank_waf[alloc] != baseline_waf[alloc]))
            flipped += bool(differs)
            table.append([
                workload, alloc, r["requests"],
                round(r["p50_us"], 1), round(r["p99_us"], 1),
                round(r["iops"], 1), round(r["device_waf"], 3),
                round(r["engine_waf"], 3), r["maintenance_ops"],
                rank_p99[alloc], rank_waf[alloc],
                "yes" if differs else "no",
            ])

    figure_output(
        "ablation_storage_engines",
        "Ablation — storage-engine structure x allocation policy",
        ["workload", "allocation", "requests", "p50_us", "p99_us", "iops",
         "device_waf", "engine_waf", "maintenance_ops",
         "p99_rank", "waf_rank", "ordering_differs"],
        table,
    )

    # The acceptance claim: at least two engine x allocation cells rank
    # differently than the synthetic baseline ranks the same policy —
    # the interaction a synthetic-only evaluation cannot see.
    assert flipped >= 2, f"only {flipped} cells flipped ordering"

    # And the flip is not noise: under the synthetic baseline hotcold is
    # the worst p99 of the three, under the LSM it is not.
    lsm_rank = _ranks(rows, "lsm", "p99_us")
    assert baseline_p99["hotcold"] == max(baseline_p99.values())
    assert lsm_rank["hotcold"] < max(lsm_rank.values())
