"""Ablation: GC victim-selection policy vs. write amplification.

DESIGN.md calls out victim selection as a first-order design choice
(after Van Houdt's mean-field results).  This bench sweeps every policy
on an identical aged workload and reports WAF and erase counts: greedy
should produce the least write amplification, random the most, with
randomized-greedy approaching greedy as d grows.
"""

import os
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.ssd.config import GC_POLICIES
from repro.ssd.device import SimulatedSSD
from repro.ssd.presets import tiny

#: Set REPRO_TRACE_DIR to stream each policy's GC events (victim picks,
#: per-block migration costs) as JSONL — the per-event record behind the
#: aggregate WAF numbers this figure reports.
TRACE_DIR = os.environ.get("REPRO_TRACE_DIR")


def churn(policy: str, writes: int = 12_000, seed: int = 3):
    config = tiny().with_changes(gc_policy=policy)
    device = SimulatedSSD(config)
    if TRACE_DIR:
        from repro.obs import JsonlSink

        device.attach_sink(JsonlSink(
            Path(TRACE_DIR) / f"ablation_gc_{policy}.jsonl"
        ))
    rng = np.random.default_rng(seed)
    # 80/20 skew so victim quality varies across blocks.
    hot = max(1, device.num_sectors // 5)
    for _ in range(writes):
        if rng.random() < 0.8:
            lba = int(rng.integers(hot))
        else:
            lba = hot + int(rng.integers(device.num_sectors - hot))
        device.write_sectors(lba, 1)
    device.flush()
    if TRACE_DIR:
        device.obs.close()
    return device


@pytest.mark.benchmark(group="ablation-gc")
def test_ablation_gc_policy_waf(benchmark, figure_output):
    def experiment():
        return {policy: churn(policy) for policy in GC_POLICIES}

    devices = run_once(benchmark, experiment)
    rows = []
    waf = {}
    for policy, device in devices.items():
        waf[policy] = device.smart.waf()
        rows.append([
            policy,
            round(device.smart.waf(), 3),
            device.smart.erase_count,
            device.ftl.stats.gc_migrated_sectors,
        ])
    figure_output(
        "ablation_gc_policy",
        "Ablation — GC victim selection vs write amplification (80/20 churn)",
        ["policy", "WAF", "erases", "migrated sectors"],
        rows,
    )
    assert waf["greedy"] <= waf["random"]
    assert waf["randomized_greedy"] <= waf["random"] * 1.05


@pytest.mark.benchmark(group="ablation-gc")
def test_ablation_randomized_greedy_sample_size(benchmark, figure_output):
    """d-choices: larger d converges to greedy."""

    def experiment():
        results = {}
        for d in (2, 4, 8, 16):
            config = tiny().with_changes(gc_policy="randomized_greedy",
                                         gc_sample_size=d)
            device = SimulatedSSD(config)
            rng = np.random.default_rng(5)
            for _ in range(10_000):
                device.write_sectors(int(rng.integers(device.num_sectors)), 1)
            device.flush()
            results[d] = device.smart.waf()
        return results

    results = run_once(benchmark, experiment)
    figure_output(
        "ablation_gc_sample_size",
        "Ablation — randomized-greedy sample size d vs WAF",
        ["d", "WAF"],
        [[d, round(w, 3)] for d, w in results.items()],
    )
    assert results[16] <= results[2] * 1.1
