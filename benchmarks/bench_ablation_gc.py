"""Ablation: GC victim-selection policy vs. write amplification.

DESIGN.md calls out victim selection as a first-order design choice
(after Van Houdt's mean-field results).  This bench sweeps every policy
on an identical aged workload and reports WAF and erase counts: greedy
should produce the least write amplification, random the most, with
randomized-greedy approaching greedy as d grows.

The per-policy runs are independent, so the sweep fans out through
:class:`repro.exp.Runner` — one :class:`repro.exp.ChurnCell` per policy.
"""

import os
from pathlib import Path

import pytest

from benchmarks.conftest import run_once
from repro.exp import Cell, ChurnCell, Runner, run_churn_cell
from repro.ssd.presets import tiny

#: Pinned to the policies in the golden ablation_gc_policy.csv; the
#: registry-era additions (d_choices, cat) are covered by
#: bench_ablation_policy_grid.py so re-running this bench never
#: rewrites the golden figure's row set.
GC_POLICIES = ("greedy", "randomized_greedy", "random", "fifo", "cost_benefit")

#: Set REPRO_TRACE_DIR to stream each policy's GC events (victim picks,
#: per-block migration costs) as JSONL — the per-event record behind the
#: aggregate WAF numbers this figure reports.
TRACE_DIR = os.environ.get("REPRO_TRACE_DIR")


def _churn_cell(policy: str) -> ChurnCell:
    trace = None
    if TRACE_DIR:
        trace = str(Path(TRACE_DIR) / f"ablation_gc_{policy}.jsonl")
    return ChurnCell(
        config=tiny().with_changes(gc_policy=policy),
        writes=12_000,
        pattern="hotcold",
        hot_divisor=5,
        hot_traffic=0.8,
        trace_path=trace,
    )


@pytest.mark.benchmark(group="ablation-gc")
def test_ablation_gc_policy_waf(benchmark, figure_output):
    def experiment():
        cells = [
            Cell(run_churn_cell, _churn_cell(policy), seed=3,
                 label=f"gc:{policy}", cacheable=not TRACE_DIR)
            for policy in GC_POLICIES
        ]
        results = Runner().run(cells)
        return dict(zip(GC_POLICIES, results))

    outcomes = run_once(benchmark, experiment)
    rows = []
    waf = {}
    for policy, result in outcomes.items():
        waf[policy] = result.waf
        rows.append([
            policy,
            round(result.waf, 3),
            result.erase_count,
            result.gc_migrated_sectors,
        ])
    figure_output(
        "ablation_gc_policy",
        "Ablation — GC victim selection vs write amplification (80/20 churn)",
        ["policy", "WAF", "erases", "migrated sectors"],
        rows,
    )
    assert waf["greedy"] <= waf["random"]
    assert waf["randomized_greedy"] <= waf["random"] * 1.05


@pytest.mark.benchmark(group="ablation-gc")
def test_ablation_randomized_greedy_sample_size(benchmark, figure_output):
    """d-choices: larger d converges to greedy."""
    sample_sizes = (2, 4, 8, 16)

    def experiment():
        cells = [
            Cell(
                run_churn_cell,
                ChurnCell(
                    config=tiny().with_changes(gc_policy="randomized_greedy",
                                               gc_sample_size=d),
                    writes=10_000,
                    pattern="uniform",
                ),
                seed=5,
                label=f"gc:d={d}",
            )
            for d in sample_sizes
        ]
        results = Runner().run(cells)
        return {d: r.waf for d, r in zip(sample_sizes, results)}

    results = run_once(benchmark, experiment)
    figure_output(
        "ablation_gc_sample_size",
        "Ablation — randomized-greedy sample size d vs WAF",
        ["d", "WAF"],
        [[d, round(w, 3)] for d, w in results.items()],
    )
    assert results[16] <= results[2] * 1.1
