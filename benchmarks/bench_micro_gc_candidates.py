"""Microbenchmark: incremental GC candidate index vs full plane scan.

``VictimSelector.candidates`` used to scan every block in the plane on
every GC invocation; the allocator now maintains the sealed-block set
incrementally on block state changes, so a candidates call is
O(pool size) instead of O(blocks per plane).  This bench ages a device
on the Fig 3 workload shape (uniform random single-sector churn until
GC is active), verifies both implementations agree on every plane, and
times them head-to-head.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.ssd.device import SimulatedSSD
from repro.ssd.presets import mqsim_baseline

AGING_WRITES = 6_000
TIMING_ROUNDS = 400


def _aged_device() -> SimulatedSSD:
    device = SimulatedSSD(mqsim_baseline(scale=4))
    rng = np.random.default_rng(11)
    for _ in range(AGING_WRITES):
        device.write_sectors(int(rng.integers(device.num_sectors)), 1)
    device.flush()
    return device


def _time_calls(fn, planes: int, rounds: int) -> float:
    started = time.perf_counter()
    for _ in range(rounds):
        for plane in range(planes):
            fn(plane)
    return time.perf_counter() - started


@pytest.mark.benchmark(group="micro-gc")
def test_micro_gc_candidates(benchmark, figure_output):
    def experiment():
        device = _aged_device()
        selector = device.ftl.selector
        planes = selector.geometry.planes_total

        pools = [selector.candidates(p) for p in range(planes)]
        scans = [selector.candidates_scan(p) for p in range(planes)]
        assert pools == scans  # same candidates, same order

        incremental_s = _time_calls(selector.candidates, planes,
                                    TIMING_ROUNDS)
        scan_s = _time_calls(selector.candidates_scan, planes,
                             TIMING_ROUNDS)
        return {
            "planes": planes,
            "pool_size": sum(len(p) for p in pools) // max(1, planes),
            "blocks_per_plane": selector.geometry.blocks_per_plane,
            "calls": TIMING_ROUNDS * planes,
            "incremental_s": incremental_s,
            "scan_s": scan_s,
        }

    result = run_once(benchmark, experiment)
    calls = result["calls"]
    rows = [
        ["full scan", calls, round(result["scan_s"] * 1e3, 1),
         round(result["scan_s"] / calls * 1e6, 2)],
        ["incremental index", calls, round(result["incremental_s"] * 1e3, 1),
         round(result["incremental_s"] / calls * 1e6, 2)],
    ]
    figure_output(
        "micro_gc_candidates",
        "Micro — GC candidate selection, incremental index vs plane scan "
        f"(mean pool {result['pool_size']} of "
        f"{result['blocks_per_plane']} blocks/plane)",
        ["implementation", "calls", "total (ms)", "us/call"],
        rows,
    )
    speedup = result["scan_s"] / result["incremental_s"]
    print(f"\nincremental speedup: {speedup:.2f}x")
    # The index must not be slower than the scan it replaced (it is
    # typically several times faster; the slack absorbs timer noise).
    assert result["incremental_s"] < result["scan_s"] * 1.1
