"""Fig 4b: WAF of random-write workloads run separately vs. concurrently.

Paper shape: three workloads (4 KB uniform, 4 KB 80/20, 16 KB uniform)
measured separately predict — via IOPS-weighted averaging — a mixed-run
WAF of 0.56; the measured mixed run lands at ~0.9, i.e. the black-box
extrapolation is off by a factor approaching 2.
"""

import pytest

from benchmarks.conftest import run_once
from repro.core.blackbox.waf import run_waf_study
from repro.exp import Runner
from repro.ssd.presets import mx500_like


@pytest.mark.benchmark(group="fig4b")
def test_fig4b_waf_extrapolation(benchmark, figure_output):
    study = run_once(benchmark, lambda: run_waf_study(
        config=mx500_like(scale=2),
        io_count=12_000,
        prime_fraction=0.5,
        runner=Runner(),
    ))
    rows = [
        [w.name, w.requests, w.host_pages, w.ftl_pages, round(w.waf, 3)]
        for w in study.separate
    ]
    rows.append(["expected mixed (weighted)", "-", "-", "-",
                 round(study.expected_mixed_waf, 3)])
    rows.append(["measured mixed", "-", "-", "-",
                 round(study.measured_mixed_waf, 3)])
    figure_output(
        "fig4b_waf",
        "Fig 4b — WAF separate vs. concurrent (MX500 model)",
        ["workload", "requests", "host pages", "FTL pages", "WAF"],
        rows,
    )
    # Paper shape: separately the workloads look similar and benign;
    # the measured mixed run exceeds the additive prediction by a
    # factor approaching 2 (paper: 0.9 measured vs 0.56 expected).
    wafs = [w.waf for w in study.separate]
    assert max(wafs) / min(wafs) < 1.5
    assert study.measured_mixed_waf > study.expected_mixed_waf
    assert 1.25 <= study.extrapolation_error <= 2.5
