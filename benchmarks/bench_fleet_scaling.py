"""Fleet scaling: devices/sec throughput floor and shard/worker
invisibility.

Runs the same 256-device, three-tenant fleet under every combination
that must not matter — worker counts jobs ∈ {1, 2, 4} and shard plans
∈ {1, 8, 32} — and asserts:

* every run's per-device results are byte-identical to the serial
  reference (pickled ``DeviceResult`` by ``DeviceResult``), and every
  merged SLO table is equal — shards and workers may only change
  wall-clock, never output;
* the serial configuration sustains at least ``FLOOR_DEVICES_PER_S``
  devices/sec, the pinned throughput floor (a conservative fraction of
  observed speed, so background noise does not flake the suite);
* with the cores to back it, extra workers actually pay: ≥2x at
  jobs=4, ≥1.3x at jobs=2 (CPU-gated, like bench_runner_scaling).

Persists ``fleet_scaling.csv`` (throughput by configuration) and
``fleet_slo.csv`` (the merged per-tenant SLO table — the golden record
checked by ``tests/regression/test_fleet_goldens.py``).
"""

import os
import pickle
import time

import pytest

from benchmarks.conftest import run_once
from repro.exp import Runner
from repro.fleet import FleetSpec, aggregate_fleet, default_tenants, run_fleet_devices

DEVICES = 256
IO_COUNT = 150
SEED = 42
JOB_COUNTS = (1, 2, 4)
SHARD_COUNTS = (1, 8, 32)
CPUS = os.cpu_count() or 1

#: pinned throughput floor, devices simulated per wall-clock second in
#: the serial configuration.  Observed ~70 dev/s on a laptop-class
#: machine; the floor is ~3x below that so slow CI only fails when the
#: hot path genuinely regresses.
FLOOR_DEVICES_PER_S = 20.0


def fleet_spec() -> FleetSpec:
    return FleetSpec(tenants=default_tenants(io_count=IO_COUNT),
                     devices=DEVICES, preset="tiny", seed=SEED)


def _timed_fleet(jobs: int, shards: int | None):
    spec = fleet_spec()
    runner = Runner(jobs=jobs, cache=None)
    started = time.perf_counter()
    devices = run_fleet_devices(spec, runner, shards=shards)
    wall_s = time.perf_counter() - started
    return devices, aggregate_fleet(spec, devices), wall_s


@pytest.mark.benchmark(group="fleet-scaling")
def test_fleet_scaling(benchmark, figure_output):
    def experiment():
        runs = {}
        for jobs in JOB_COUNTS:
            runs[(jobs, None)] = _timed_fleet(jobs, None)
        for shards in SHARD_COUNTS:
            runs[(1, shards)] = _timed_fleet(1, shards)
        return runs

    runs = run_once(benchmark, experiment)

    # Shards and workers must be invisible: per-device bytes and the
    # merged SLO table match the serial reference in every run.
    ref_devices, ref_report, serial_s = runs[(1, None)]
    ref_bytes = [pickle.dumps(d) for d in ref_devices]
    for (jobs, shards), (devices, report, _) in runs.items():
        assert [pickle.dumps(d) for d in devices] == ref_bytes, (jobs, shards)
        assert report.slo_table() == ref_report.slo_table(), (jobs, shards)

    table = []
    for (jobs, shards), (_, _, wall_s) in sorted(
            runs.items(), key=lambda kv: (kv[0][1] is not None, kv[0])):
        table.append([
            jobs,
            shards if shards is not None else "auto",
            DEVICES,
            round(wall_s, 2),
            round(DEVICES / wall_s, 1),
            round(serial_s / wall_s, 2),
            CPUS,
        ])
    figure_output(
        "fleet_scaling",
        f"Fleet scaling — {DEVICES} devices, 3-tenant mix, by jobs/shards",
        ["jobs", "shards", "devices", "wall (s)", "devices/s",
         "speedup vs serial", "cpus"],
        table,
    )

    headers, rows = ref_report.slo_table()
    figure_output(
        "fleet_slo",
        f"Fleet SLO table — {DEVICES} x tiny, default mix, seed {SEED}",
        headers, rows,
    )
    assert ref_report.ok, ref_report.violations

    # The pinned throughput floor (serial: no pool overhead to excuse).
    assert DEVICES / serial_s >= FLOOR_DEVICES_PER_S, serial_s

    # Parallel speedup needs the silicon to exist.
    if CPUS >= 4:
        assert serial_s / runs[(4, None)][2] >= 2.0
    if CPUS >= 2:
        assert serial_s / runs[(2, None)][2] >= 1.3
