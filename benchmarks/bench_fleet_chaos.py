"""Fleet chaos campaign: zero-AFR byte-identity and degraded-tail pins.

Runs the 256-device reference fleet (identical to
``bench_fleet_scaling``: three tenants, ``tiny`` preset, seed 42) under
the ``default`` fault campaign and asserts the chaos layer's three
load-bearing properties:

* **zero-AFR identity** — the campaign at AFR 0 produces the exact
  SLO table of PR 8's golden ``fleet_slo.csv``, byte for byte: wiring
  the chaos machinery in must cost the fault-free path nothing;
* **campaign reproducibility** — the nonzero-AFR campaign's per-device
  results are byte-identical across worker counts (jobs 1 vs 2) and
  shard plans (1 vs 8): which devices fail, when, and how is a pure
  function of (fleet seed, device index), never of execution layout;
* **exact accounting** — the devices that recorded fault firings are
  exactly the devices the campaign planner armed, availability drops
  below 1.0, and the fleet tail (p99.9 and p99.99) degrades relative
  to the fault-free baseline — chaos must be *visible* in the merged
  distribution, not averaged away.

Persists ``fleet_chaos.csv`` (campaign summary + healthy/faulted tail
split).
"""

import pickle
from dataclasses import replace

import pytest

from benchmarks.conftest import RESULTS_DIR, run_once
from repro.exp import Runner
from repro.fleet import (
    CAMPAIGNS,
    FleetSpec,
    aggregate_fleet,
    campaign_device_plans,
    default_tenants,
    run_fleet_devices,
)

DEVICES = 256
IO_COUNT = 150
SEED = 42


def campaign_spec(afr: float | None = None) -> FleetSpec:
    campaign = CAMPAIGNS["default"]
    if afr is not None:
        campaign = replace(campaign, afr=afr)
    return FleetSpec(tenants=default_tenants(io_count=IO_COUNT),
                     devices=DEVICES, preset="tiny", seed=SEED,
                     campaign=campaign)


def _fleet(spec: FleetSpec, jobs: int, shards: int | None):
    devices = run_fleet_devices(spec, Runner(jobs=jobs, cache=None),
                                shards=shards)
    return devices, aggregate_fleet(spec, devices)


@pytest.mark.benchmark(group="fleet-chaos")
def test_fleet_chaos(benchmark, figure_output, tmp_path):
    def experiment():
        zero = _fleet(campaign_spec(afr=0.0), 1, None)
        chaos = {
            (jobs, shards): _fleet(campaign_spec(), jobs, shards)
            for jobs, shards in ((1, None), (2, None), (1, 1), (1, 8))
        }
        return zero, chaos

    (zero_devices, zero_report), chaos = run_once(benchmark, experiment)

    # Zero-AFR identity: the campaign-at-rest SLO table reproduces the
    # PR 8 golden byte for byte.
    from repro.analysis.report import write_csv

    golden = RESULTS_DIR / "fleet_slo.csv"
    assert golden.exists(), "run bench_fleet_scaling first (golden missing)"
    headers, rows = zero_report.slo_table()
    write_csv(tmp_path / "fleet_slo.csv", headers, rows)
    assert (tmp_path / "fleet_slo.csv").read_bytes() == golden.read_bytes()
    assert zero_report.availability == 1.0
    assert zero_report.durability_ok

    # Campaign reproducibility: jobs and shard plans are invisible.
    ref_devices, ref_report = chaos[(1, None)]
    ref_bytes = [pickle.dumps(d) for d in ref_devices]
    for layout, (devices, _) in chaos.items():
        assert [pickle.dumps(d) for d in devices] == ref_bytes, layout

    # Exact device-level accounting: the firing log names exactly the
    # devices the planner armed, and the totals line up.
    plans = campaign_device_plans(campaign_spec())
    fired = {d.index for d in ref_devices if d.fault_events}
    assert fired == set(plans)
    assert ref_report.devices_faulted == len(plans)
    manual = {}
    for device in ref_devices:
        for kind, _, _ in device.fault_events:
            manual[kind] = manual.get(kind, 0) + 1
    assert ref_report.events_by_kind == tuple(sorted(manual.items()))

    # Chaos must be visible: availability below 1.0, degraded devices,
    # and a fatter fleet tail than the fault-free baseline.
    assert ref_report.availability < 1.0
    assert ref_report.devices_degraded > 0
    zero_p999 = zero_report.fleet_sketch.quantile(0.999)
    zero_p9999 = zero_report.fleet_sketch.quantile(0.9999)
    assert ref_report.fleet_sketch.quantile(0.999) > zero_p999
    assert ref_report.fleet_sketch.quantile(0.9999) > 2 * zero_p9999

    table = [
        ["availability", round(ref_report.availability, 6)],
        ["devices faulted", ref_report.devices_faulted],
        ["devices degraded", ref_report.devices_degraded],
        ["failed requests", ref_report.failed_requests],
        ["sectors lost", ref_report.sectors_lost],
        ["durability", "PASS" if ref_report.durability_ok else "FAIL"],
        ["p99.9 (us) zero-AFR", round(float(zero_p999), 1)],
        ["p99.9 (us) campaign",
         round(float(ref_report.fleet_sketch.quantile(0.999)), 1)],
        ["p99.99 (us) zero-AFR", round(float(zero_p9999), 1)],
        ["p99.99 (us) campaign",
         round(float(ref_report.fleet_sketch.quantile(0.9999)), 1)],
    ]
    for kind, count in ref_report.events_by_kind:
        table.append([f"firings: {kind}", count])
    figure_output(
        "fleet_chaos",
        f"Fleet chaos — {DEVICES} x tiny, default campaign "
        f"(AFR {CAMPAIGNS['default'].afr:g}), seed {SEED}",
        ["metric", "value"], table,
    )
