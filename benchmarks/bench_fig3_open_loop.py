"""Fig 3 companion: closed-loop vs open-loop submission.

The paper's tail-latency figure (and fio's default model) is
closed-loop: iodepth outstanding requests, so a slow device silently
throttles its own offered load and the measured tail understates what a
rate-driven application would see.  Open-loop submission
(``JobSpec.submission="open"``) decouples arrivals from completions:
requests arrive at a fixed rate whatever the device is doing, so at
saturation the queue — and the tail — grows without bound.

This bench runs the same random-write job closed-loop and open-loop at
sub-saturating and saturating fractions of the closed-loop throughput,
recording how the reported percentiles diverge.
"""

import pytest

from benchmarks.conftest import run_once
from repro.ssd.presets import tiny
from repro.ssd.timed import TimedSSD
from repro.workloads.engine import run_timed
from repro.workloads.patterns import Region
from repro.workloads.spec import JobSpec

IO_COUNT = 3000
SEED = 7


def run_mode(submission, rate_iops=0.0):
    # The tiny preset goes GC-bound within the run, so closed-loop qd=4
    # genuinely measures the device's sustainable throughput — the
    # saturation point the open-loop rates are set against.
    device = TimedSSD(tiny())
    job = JobSpec("fig3", "randwrite", Region(0, device.num_sectors),
                  bs_sectors=1, io_count=IO_COUNT, iodepth=4, seed=SEED,
                  submission=submission, rate_iops=rate_iops)
    return run_timed(device, [job]).jobs["fig3"]


@pytest.mark.benchmark(group="fig3")
def test_open_vs_closed_loop_tails(benchmark, figure_output):
    def experiment():
        closed = run_mode("closed")
        rates = {
            "0.5x": 0.5 * closed.iops,
            "0.9x": 0.9 * closed.iops,
            "1.2x": 1.2 * closed.iops,
        }
        opens = {tag: run_mode("open", rate) for tag, rate in rates.items()}
        return closed, rates, opens

    closed, rates, opens = run_once(benchmark, experiment)

    def row(tag, job, rate):
        return [tag, round(rate) if rate else "-",
                round(job.percentile_us(50), 1),
                round(job.percentile_us(99), 1),
                round(job.percentile_us(99.9), 1),
                round(job.iops)]

    rows = [row("closed qd=4", closed, 0)]
    rows += [row(f"open {tag}", opens[tag], rates[tag]) for tag in opens]
    figure_output(
        "fig3_open_vs_closed",
        "Fig 3 companion — closed-loop vs open-loop submission",
        ["submission", "offered IOPS", "p50 (us)", "p99 (us)",
         "p99.9 (us)", "achieved IOPS"],
        rows,
    )
    # The figure's shape: past saturation the open-loop tail leaves the
    # closed-loop measurement far behind...
    assert opens["1.2x"].percentile_us(99) > 5 * closed.percentile_us(99)
    # ...and grows monotonically with offered load.
    assert (opens["1.2x"].percentile_us(99) > opens["0.9x"].percentile_us(99)
            > opens["0.5x"].percentile_us(99) * 0.999)
    # Open loop can never push more than offered.
    assert opens["0.5x"].iops <= rates["0.5x"] * 1.05
