"""Ablation: the §2.1 "unpredictable background operations".

Two demonstrations on one device:

1. idle maintenance (idle GC / wear leveling / refresh) runs while the
   host is quiet and *delays the next foreground request* — the reason
   embedded/real-time systems over-provision around SSDs;
2. a hardware probe on the flash bus *sees* those operations happening
   outside any host-request window, recovering the attribution a
   black-box observer lacks.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.core.probe.analyzer import TLA7000, LogicAnalyzer
from repro.core.probe.decoder import decode_trace_windows
from repro.core.probe.inference import HostOpRecord, infer_ftl_features
from repro.flash.timing import profile
from repro.ssd.presets import vertex2_like
from repro.ssd.timed import BusTap, TimedSSD


def build_busy_device():
    config = vertex2_like(scale=2).with_changes(
        wear_leveling=True, wear_leveling_delta=4,
    )
    tap = BusTap(config.geometry, profile(config.timing_name), channel=0)
    device = TimedSSD(config, bus_tap=tap)
    rng = np.random.default_rng(11)
    host_log = []
    for i in range(9000):
        # A few known LBAs are kept deterministically written so the
        # foreground-delay experiment has data to read back.
        lba = i % 16 if i < 16 else int(rng.integers(device.num_sectors))
        request = device.submit("write", lba, 1, at_ns=device.now)
        host_log.append(HostOpRecord("write", request.submit_ns,
                                     request.complete_ns, 1))
    flush = device.flush()
    host_log.append(HostOpRecord("flush", flush.submit_ns,
                                 flush.complete_ns, 0))
    device.quiesce()
    return device, tap, host_log


@pytest.mark.benchmark(group="ablation-background")
def test_background_ops_visible_to_probe(benchmark, figure_output):
    def experiment():
        device, tap, host_log = build_busy_device()
        # Host goes quiet; the FTL does not.  The analyzer is re-armed
        # at the start of the idle window (a real session would trigger
        # on bus activity while knowing the host queue is empty).
        idle_start = device.now
        for _ in range(4):
            device.idle(max_blocks=4)
        result = decode_trace_windows(tap.trace, LogicAnalyzer(TLA7000),
                                      start=idle_start)
        report = infer_ftl_features(
            result.ops, host_log,
            sector_size=device.geometry.sector_size,
        )
        return device, report, idle_start

    device, report, _ = run_once(benchmark, experiment)
    figure_output(
        "ablation_background_probe",
        "Ablation — probe view of idle-time background operations",
        ["feature", "value"],
        report.rows(),
    )
    did_background_work = (device.ftl.stats.idle_gc_blocks
                           + device.ftl.stats.wear_migrations) > 0
    assert did_background_work
    # The probe attributes flash ops to the idle window.
    assert report.background_ops > 0


@pytest.mark.benchmark(group="ablation-background")
def test_background_ops_delay_foreground(benchmark, figure_output):
    def experiment():
        device, _, _ = build_busy_device()
        start = device.now
        quiet = max(
            device.submit("read", lba, 1, at_ns=start).latency_us
            for lba in range(8)
        )
        device.quiesce()
        start2 = device.now
        device.idle(max_blocks=8)  # maintenance fires...
        busy = max(
            device.submit("read", lba, 1, at_ns=start2 + 1).latency_us
            for lba in range(8, 16)
        )  # ...mid-read, across several dies
        return device, quiet, busy

    device, quiet_us, busy_us = run_once(benchmark, experiment)
    figure_output(
        "ablation_background_latency",
        "Ablation — read latency with and without background maintenance",
        ["condition", "read latency (us)"],
        [["quiet device", round(quiet_us, 1)],
         ["during idle maintenance", round(busy_us, 1)]],
    )
    if device.ftl.stats.idle_gc_blocks + device.ftl.stats.wear_migrations:
        assert busy_us > quiet_us
