"""Fig 1: file systems age variably for different SSD models.

Paper shape (from Kadekodi et al.'s reproduction of the F2FS file-server
experiment): the F2FS/EXT4 throughput ratio is not a constant ~2x — it
varies substantially across SSD models and aging states (U/A/M).
"""

import pytest

from benchmarks.conftest import run_once
from repro.fs.aging import AgingProfile, age_filesystem
from repro.fs.ext4 import Ext4Model
from repro.fs.f2fs import F2fsModel
from repro.fs.vfs import TimedBackend
from repro.ssd.presets import ssd64_like, ssd120_like
from repro.ssd.timed import TimedSSD
from repro.workloads.fileserver import FileServerConfig, FileServerWorkload

PROFILES = {
    "U": AgingProfile("U", phases=()),
    "A": AgingProfile("A", phases=((0.55, 500), (0.40, 200), (0.58, 350)),
                      size_mu=2.0, size_sigma=0.8, max_file_sectors=64),
    "M": AgingProfile("M", phases=((0.65, 450), (0.40, 250), (0.68, 450)),
                      size_mu=2.6, size_sigma=1.1, max_file_sectors=256),
}
MODELS = {"ssd64": ssd64_like, "ssd120": ssd120_like}


def throughput(config, fs_cls, profile) -> float:
    device = TimedSSD(config)
    backend = TimedBackend(device)
    if fs_cls is F2fsModel:
        fs = F2fsModel(backend, segment_sectors=256, checkpoint_sectors=32)
    else:
        fs = Ext4Model(backend, journal_sectors=256, metadata_sectors=128)
    age_filesystem(fs, profile, seed=7)
    workload = FileServerWorkload(
        fs, FileServerConfig(working_files=40, mean_file_sectors=16), seed=11
    )
    workload.prepare()
    return workload.run(500).ops_per_second


def experiment():
    table = {}
    for model_name, config_fn in MODELS.items():
        for profile_name, profile in PROFILES.items():
            ext4 = throughput(config_fn(scale=2), Ext4Model, profile)
            f2fs = throughput(config_fn(scale=2), F2fsModel, profile)
            table[(model_name, profile_name)] = (ext4, f2fs)
    return table


@pytest.mark.benchmark(group="fig1")
def test_fig1_aging_ratio_varies(benchmark, figure_output):
    table = run_once(benchmark, experiment)
    rows = []
    ratios = {}
    for (model, profile), (ext4, f2fs) in table.items():
        ratio = f2fs / ext4 if ext4 else 0.0
        ratios[(model, profile)] = ratio
        rows.append([model, profile, round(ext4), round(f2fs), round(ratio, 3)])
    figure_output(
        "fig1_aging",
        "Fig 1 — file-server throughput: F2FS/EXT4 by SSD model and aging",
        ["SSD model", "aging", "ext4 ops/s", "f2fs ops/s", "f2fs/ext4"],
        rows,
    )
    values = list(ratios.values())
    # Paper shape: the ratio is NOT uniform across models/aging states —
    # it varies significantly (Kadekodi et al. contradict the F2FS
    # paper's "2x across the board").
    assert max(values) / min(values) > 1.25
    # And the log-structured FS should still generally help on flash.
    assert sum(v > 1.0 for v in values) >= len(values) // 2
