"""Latency cost of graceful degradation: clean vs faulted device.

The paper argues reliability machinery is a major source of performance
opacity — the host sees latency spikes with no visible cause.  This
bench makes the cause visible: the same timed workload runs on a clean
device and on one with an active fault plan (probabilistic uncorrectable
reads + program fails), and the table reports mean/p99 read and write
latency, WAF, and the degradation accounting (retries, RAIN rebuilds,
relocations, retired blocks) side by side.

Asserted shape: the faulted run must actually exercise the RAIN path
(reconstructions > 0, every uncorrectable read recovered) and its read
p99 must sit at or above the clean run's — degradation is never free.
"""

import pytest

from benchmarks.conftest import run_once
from repro.exp import Cell, Runner
from repro.faults import FaultLatencyCell, FaultPlan, FaultSpec, run_fault_latency_cell
from repro.ssd.presets import tiny

WRITES = 1200
READS = 1200
SEED = 11

#: enough uncorrectable reads to shape the tail, few enough that RAIN
#: relocations don't consume the tiny geometry's spare blocks.
UNCORRECTABLE_RATE = 0.02
#: op-triggered rather than probabilistic: exactly this many grown-bad
#: blocks, placed mid-workload (tiny's spare pool can't absorb a
#: rate-driven retirement storm).
PROGRAM_FAILS = 2
PROGRAM_FAIL_AT_OP = 600


def _config():
    return tiny().with_changes(
        rain_stripe=4,
        read_retry_steps=3,
        ops_per_day=0,  # degradation here is injected, not aged
    )


def _plan():
    return FaultPlan(seed=SEED, specs=(
        FaultSpec("uncorrectable_read", probability=UNCORRECTABLE_RATE,
                  count=0),
        FaultSpec("program_fail", at_op=PROGRAM_FAIL_AT_OP,
                  count=PROGRAM_FAILS),
    ))


@pytest.mark.benchmark(group="fault-degradation")
def test_fault_degradation_latency(benchmark, figure_output):
    def experiment():
        config = _config()
        cells = [
            Cell(run_fault_latency_cell,
                 FaultLatencyCell(config, plan=None,
                                  writes=WRITES, reads=READS, seed=SEED),
                 label="clean"),
            Cell(run_fault_latency_cell,
                 FaultLatencyCell(config, plan=_plan(),
                                  writes=WRITES, reads=READS, seed=SEED),
                 label="faulted"),
        ]
        return Runner(jobs=2).run(cells)

    clean, faulted = run_once(benchmark, experiment)

    rows = [
        ["clean", round(clean.read_mean_us, 1), round(clean.read_p99_us, 1),
         round(clean.write_mean_us, 1), round(clean.write_p99_us, 1),
         round(clean.waf, 3), clean.read_retries, clean.rain_reconstructions,
         clean.relocated_sectors, clean.blocks_retired],
        ["faulted", round(faulted.read_mean_us, 1),
         round(faulted.read_p99_us, 1), round(faulted.write_mean_us, 1),
         round(faulted.write_p99_us, 1), round(faulted.waf, 3),
         faulted.read_retries, faulted.rain_reconstructions,
         faulted.relocated_sectors, faulted.blocks_retired],
    ]
    figure_output(
        "fault_degradation",
        "Graceful degradation — clean vs faulted latency (tiny, RAIN 4)",
        ["variant", "read mean (us)", "read p99 (us)", "write mean (us)",
         "write p99 (us)", "WAF", "retries", "rain rebuilds",
         "relocated", "blk retired"],
        rows,
    )

    # The clean run has no degradation machinery engaged at all.
    assert clean.read_retries == 0
    assert clean.rain_reconstructions == 0
    assert clean.uncorrectable_reads == 0
    assert clean.fault_log == ()

    # The faulted run demonstrably served uncorrectable reads via RAIN:
    # reconstructions happened and none were abandoned as unreadable.
    assert faulted.rain_reconstructions > 0
    assert faulted.read_retries > 0
    assert faulted.uncorrectable_reads == 0
    assert faulted.relocated_sectors == faulted.rain_reconstructions
    assert faulted.blocks_retired == PROGRAM_FAILS

    # Degradation is never free: the faulted tail sits at or above the
    # clean one, and reconstruction traffic inflates WAF.
    assert faulted.read_p99_us >= clean.read_p99_us
    assert faulted.waf >= clean.waf
