"""Runner scaling: the Fig 3 study under varying worker counts, cold
vs warm cache.

Measures the experiment layer itself rather than the simulator: the
same fidelity-study cell grid is executed at jobs ∈ {1, 2, 4} with a
fresh content-addressed cache per row (cold) and then re-run against
the populated cache (warm).  Results are asserted identical across all
configurations — the runner may only change wall-clock, never output.

Speedup from extra workers requires the cores to exist, so the ≥2x
assertion at jobs=4 is gated on the machine actually exposing 4 CPUs;
the warm-cache win (hits are millisecond unpickles) holds on any
machine and is asserted unconditionally.  The CSV records the CPU
count so rows from different runners stay interpretable.
"""

import os
import shutil
import tempfile
import time

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.core.modeling.fidelity import run_fidelity_study
from repro.exp import ResultCache, Runner
from repro.ssd.presets import mqsim_baseline

JOB_COUNTS = (1, 2, 4)
BLOCK_SIZES = (1, 2)
IO_COUNT = 1200
CPUS = os.cpu_count() or 1


def _timed_study(jobs: int, cache_dir: str):
    runner = Runner(jobs=jobs, cache=ResultCache(cache_dir))
    started = time.perf_counter()
    study = run_fidelity_study(
        mqsim_baseline(scale=4),
        block_sizes_sectors=BLOCK_SIZES,
        io_count=IO_COUNT,
        runner=runner,
    )
    return study, time.perf_counter() - started, runner


@pytest.mark.benchmark(group="runner-scaling")
def test_runner_scaling(benchmark, figure_output):
    def experiment():
        rows = {}
        for jobs in JOB_COUNTS:
            cache_dir = tempfile.mkdtemp(prefix=f"repro-scaling-j{jobs}-")
            try:
                study, cold_s, _ = _timed_study(jobs, cache_dir)
                warm_study, warm_s, warm_runner = _timed_study(jobs, cache_dir)
                assert warm_runner.stats.executed == 0
                rows[jobs] = (study, cold_s, warm_study, warm_s)
            finally:
                shutil.rmtree(cache_dir, ignore_errors=True)
        return rows

    rows = run_once(benchmark, experiment)

    # The runner must be invisible in the numbers: every jobs value and
    # every warm re-run reproduces the serial study exactly.
    reference = rows[1][0]
    for jobs, (study, _, warm_study, _) in rows.items():
        for variant_set in (study.results, warm_study.results):
            for a, b in zip(reference.results, variant_set):
                assert (a.variant, a.bs_sectors) == (b.variant, b.bs_sectors)
                assert a.summary == b.summary
                assert np.array_equal(a.tail_values_us, b.tail_values_us)

    serial_cold = rows[1][1]
    table = []
    for jobs in JOB_COUNTS:
        _, cold_s, _, warm_s = rows[jobs]
        table.append([
            jobs,
            round(cold_s, 2),
            round(warm_s, 3),
            round(serial_cold / cold_s, 2),
            round(warm_s / cold_s, 3),
            CPUS,
        ])
    figure_output(
        "runner_scaling",
        "Experiment runner — Fig 3 study wall-clock by worker count",
        ["jobs", "cold (s)", "warm (s)", "speedup vs jobs=1",
         "warm/cold", "cpus"],
        table,
    )

    # Warm cache: every cell is a hit, so the re-run must be a small
    # fraction of the cold run whatever the core count.
    for jobs in JOB_COUNTS:
        _, cold_s, _, warm_s = rows[jobs]
        assert warm_s < 0.10 * cold_s, (jobs, cold_s, warm_s)

    # Parallel speedup needs the silicon to exist.
    if CPUS >= 4:
        assert serial_cold / rows[4][1] >= 2.0
    if CPUS >= 2:
        assert serial_cold / rows[2][1] >= 1.3
