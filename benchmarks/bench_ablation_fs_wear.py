"""Ablations: file-system write patterns at the FTL, and wear leveling.

Companions to Fig 1: the *device-level* reason log-structured file
systems behave differently — F2FS's sequential logs and discards produce
less FTL garbage collection than EXT4's scattered in-place updates — and
the lifetime mechanism (static wear leveling) that black-box observers
can only guess at.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.fs.ext4 import Ext4Model
from repro.fs.f2fs import F2fsModel
from repro.fs.vfs import CounterBackend
from repro.ssd.device import SimulatedSSD
from repro.ssd.presets import tiny
from repro.workloads.fileserver import FileServerConfig, FileServerWorkload


def run_fs(fs_cls, ops=1200, seed=3):
    device = SimulatedSSD(tiny())
    backend = CounterBackend(device)
    if fs_cls is F2fsModel:
        fs = F2fsModel(backend, segment_sectors=32, checkpoint_sectors=8,
                       clean_low_water=2)
    else:
        fs = Ext4Model(backend, journal_sectors=32, metadata_sectors=32)
    workload = FileServerWorkload(
        fs, FileServerConfig(working_files=24, mean_file_sectors=8), seed=seed
    )
    workload.prepare()
    workload.run(ops)
    backend.flush()
    return device


@pytest.mark.benchmark(group="ablation-fs")
def test_ablation_fs_write_patterns_at_ftl(benchmark, figure_output):
    def experiment():
        return {cls.name: run_fs(cls) for cls in (Ext4Model, F2fsModel)}

    devices = run_once(benchmark, experiment)
    rows = []
    for name, device in devices.items():
        rows.append([
            name,
            device.smart.host_program_pages,
            device.smart.ftl_program_pages,
            round(device.smart.waf(), 3),
            device.ftl.stats.trimmed_sectors,
            device.smart.erase_count,
        ])
    figure_output(
        "ablation_fs_ftl",
        "Ablation — file-server workload as seen by the FTL",
        ["fs", "host pages", "FTL pages", "WAF", "trimmed", "erases"],
        rows,
    )
    by_name = {row[0]: row for row in rows}
    # F2FS discards deleted space; EXT4 (no discard) does not.
    assert by_name["f2fs"][4] > 0
    assert by_name["ext4"][4] == 0
    # The log-structured pattern costs the FTL less per host page.
    assert by_name["f2fs"][3] <= by_name["ext4"][3] * 1.1


@pytest.mark.benchmark(group="ablation-wear")
def test_ablation_static_wear_leveling(benchmark, figure_output):
    def experiment():
        results = {}
        for leveling in (False, True):
            config = tiny().with_changes(wear_leveling=leveling,
                                         wear_leveling_delta=6)
            device = SimulatedSSD(config)
            rng = np.random.default_rng(7)
            # Cold data pins blocks; hot churn wears the rest.
            for lpn in range(128):
                device.write_sectors(lpn, 1)
            device.flush()
            for i in range(14_000):
                lba = 128 + int(rng.integers(device.num_sectors - 128))
                device.write_sectors(lba, 1)
                if i % 500 == 499:
                    device.idle(max_blocks=4)
            device.flush()
            results[leveling] = device
        return results

    results = run_once(benchmark, experiment)
    rows = []
    spread = {}
    for leveling, device in results.items():
        summary = device.ftl.nand.wear_summary()
        spread[leveling] = summary["max"] - summary["min"]
        rows.append([
            "on" if leveling else "off",
            int(summary["min"]), int(summary["max"]),
            round(summary["std"], 2),
            device.ftl.stats.wear_migrations,
        ])
    figure_output(
        "ablation_wear_leveling",
        "Ablation — static wear leveling vs erase-count spread",
        ["leveling", "min erases", "max erases", "stddev", "migrations"],
        rows,
    )
    assert results[True].ftl.stats.wear_migrations > 0
    assert spread[True] < spread[False]
