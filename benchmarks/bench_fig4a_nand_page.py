"""Fig 4a: host bytes per NAND page vs. sequential write size (MX500).

Paper shape: the ratio climbs with write size and converges at ~30 KB —
a 32 KB NAND page carrying 15/16 host data under RAIN striping.
"""

import pytest

from benchmarks.conftest import run_once
from repro.core.blackbox.nand_page import sequential_write_sweep
from repro.ssd.device import SimulatedSSD
from repro.ssd.presets import mx500_like


@pytest.mark.benchmark(group="fig4a")
def test_fig4a_nand_page_convergence(benchmark, figure_output):
    def experiment():
        device = SimulatedSSD(mx500_like(scale=2), model="MX500 (repro)")
        sector = device.sector_size
        return sequential_write_sweep(
            device, sizes_bytes=[sector * (1 << i) for i in range(1, 11)]
        )

    estimate = run_once(benchmark, experiment)
    rows = [
        [p.write_bytes // 1024, p.nand_pages, round(p.bytes_per_page)]
        for p in estimate.points
    ]
    figure_output(
        "fig4a_nand_page",
        "Fig 4a — sequential write sweep (host bytes per NAND page)",
        ["host write (KiB)", "NAND pages", "bytes/page"],
        rows,
    )
    converged = estimate.converged_bytes_per_page
    # Paper: ~30 KB per NAND page (32 KiB * 15/16 = 30720 B).
    assert converged == pytest.approx(30720, rel=0.08)
    # Small writes sit below the asymptote.
    assert estimate.points[0].bytes_per_page < converged


@pytest.mark.benchmark(group="fig4a")
def test_fig4a_rain_attribution(benchmark, figure_output):
    """Ablation built into the figure: disable RAIN and the ratio
    converges at the raw page size instead — attributing the 30 KB
    plateau to parity, as the paper conjectures."""

    def experiment():
        config = mx500_like(scale=2).with_changes(rain_stripe=0)
        device = SimulatedSSD(config)
        sector = device.sector_size
        return sequential_write_sweep(
            device, sizes_bytes=[sector * (1 << i) for i in range(3, 11)]
        )

    estimate = run_once(benchmark, experiment)
    figure_output(
        "fig4a_no_rain",
        "Fig 4a (ablation) — RAIN disabled",
        ["host write (KiB)", "NAND pages", "bytes/page"],
        [[p.write_bytes // 1024, p.nand_pages, round(p.bytes_per_page)]
         for p in estimate.points],
    )
    assert estimate.converged_bytes_per_page == pytest.approx(32768, rel=0.08)
