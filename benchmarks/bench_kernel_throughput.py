"""Throughput floor for the batched simulation hot path.

Correctness is pinned by goldens; simulator *speed* is pinned here.  Each
scenario runs the refactored fast path head-to-head against a
measured-in-job baseline — the same build with ``fast_path=False``, which
forces the pre-refactor-shaped general code everywhere (per-op ONFI
re-encoding, allocating mapping results, full plane scans, per-slot
bookkeeping) — and asserts a minimum speedup *ratio*.  Ratios compare two
runs on the same machine in the same job, so the floor is
machine-tolerant where an absolute ops/sec floor would not be.

Every scenario also asserts the two modes produce byte-identical
simulated timelines: the refactor changes representation, never
semantics.

Scenarios:

* ``closed_loop`` — the NullSink closed-loop path: one job, iodepth 1,
  sequential single-sector writes, no sink attached.  The headline
  end-to-end number.
* ``gc_steady``   — same, but the region wraps so the device runs in
  steady-state foreground GC (exercises the vectorized victim-block
  scan and the O(1) watermark check).
* ``open_loop``   — open-loop submission at a sustainable rate
  (exercises bulk generator stepping: no per-op ready-heap churn).
* ``wear_stats``  — ``NandArray.wear_summary`` from the incremental
  aggregates vs a full array rescan per call.
* ``kernel_batch`` — ``Kernel.schedule_batch`` one-shot admission vs a
  per-event ``schedule`` loop.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.flash.nand import NandArray
from repro.sim.kernel import Kernel
from repro.ssd.presets import mqsim_baseline
from repro.ssd.timed import TimedSSD
from repro.workloads.engine import run_timed
from repro.workloads.patterns import Region
from repro.workloads.spec import JobSpec

#: Pinned speedup floors (fast path vs measured-in-job baseline).  The
#: measured ratios carry ~30-40% margin so a loaded CI machine does not
#: flake; a real hot-path regression still trips them.
FLOORS = {
    "closed_loop": 1.35,
    "gc_steady": 1.25,
    "open_loop": 1.40,
    "wear_stats": 8.0,
    "kernel_batch": 0.90,
}

CLOSED_OPS = 25_000
GC_OPS = 40_000
OPEN_OPS = 25_000
WEAR_CALLS = 1_500
BATCH_EVENTS = 150_000


def _timed_run(fast: bool, io_count: int, region: Region | None = None,
               **job_kwargs):
    config = mqsim_baseline()
    device = TimedSSD(config, fast_path=fast)
    job = JobSpec(name="bench", rw="write",
                  region=region or Region(0, config.logical_sectors),
                  io_count=io_count, bs_sectors=1, iodepth=1, seed=7,
                  **job_kwargs)
    started = time.perf_counter()
    result = run_timed(device, [job])
    elapsed = time.perf_counter() - started
    job_result = result.jobs["bench"]
    fingerprint = (result.elapsed_ns,
                   round(float(job_result.latencies_us.sum()), 6))
    return io_count / elapsed, fingerprint


def _scenario_closed() -> dict:
    fast, fp_fast = _timed_run(True, CLOSED_OPS)
    base, fp_base = _timed_run(False, CLOSED_OPS)
    assert fp_fast == fp_base, "fast path changed the simulated timeline"
    return {"fast": fast, "baseline": base, "ops": CLOSED_OPS}


def _scenario_gc() -> dict:
    region = Region(0, 20_000)  # wraps -> steady-state foreground GC
    fast, fp_fast = _timed_run(True, GC_OPS, region=region)
    base, fp_base = _timed_run(False, GC_OPS, region=region)
    assert fp_fast == fp_base, "fast path changed the simulated timeline"
    return {"fast": fast, "baseline": base, "ops": GC_OPS}


def _scenario_open() -> dict:
    kwargs = dict(submission="open", rate_iops=50_000.0)
    fast, fp_fast = _timed_run(True, OPEN_OPS, **kwargs)
    base, fp_base = _timed_run(False, OPEN_OPS, **kwargs)
    assert fp_fast == fp_base, "fast path changed the simulated timeline"
    return {"fast": fast, "baseline": base, "ops": OPEN_OPS}


def _scenario_wear() -> dict:
    nand = NandArray(mqsim_baseline().geometry)
    rng = np.random.default_rng(5)
    for block in rng.integers(0, nand.total_blocks, size=400):
        nand.erase(int(block))

    started = time.perf_counter()
    for _ in range(WEAR_CALLS):
        incremental = nand.wear_summary()
    inc_s = time.perf_counter() - started

    started = time.perf_counter()
    for _ in range(WEAR_CALLS):
        nand.reindex_wear()  # what a per-call full scan used to pay
        rescan = nand.wear_summary()
    scan_s = time.perf_counter() - started

    assert incremental == rescan
    return {"fast": WEAR_CALLS / inc_s, "baseline": WEAR_CALLS / scan_s,
            "ops": WEAR_CALLS}


def _scenario_batch() -> dict:
    rng = np.random.default_rng(3)
    times = rng.integers(0, 10_000_000, size=BATCH_EVENTS).tolist()

    def noop() -> None:
        pass

    kernel = Kernel()
    schedule = kernel.schedule
    started = time.perf_counter()
    for at_ns in times:
        schedule(at_ns, noop)
    loop_s = time.perf_counter() - started
    kernel.run()
    fired_loop = next(kernel._seq)

    kernel = Kernel()
    events = [(at_ns, noop, ()) for at_ns in times]
    started = time.perf_counter()
    kernel.schedule_batch(events)
    batch_s = time.perf_counter() - started
    kernel.run()
    fired_batch = next(kernel._seq)

    assert fired_loop == fired_batch  # both admitted every event
    return {"fast": BATCH_EVENTS / batch_s,
            "baseline": BATCH_EVENTS / loop_s, "ops": BATCH_EVENTS}


SCENARIOS = [
    ("closed_loop", _scenario_closed),
    ("gc_steady", _scenario_gc),
    ("open_loop", _scenario_open),
    ("wear_stats", _scenario_wear),
    ("kernel_batch", _scenario_batch),
]


@pytest.mark.benchmark(group="kernel-throughput")
def test_kernel_throughput_floor(benchmark, figure_output):
    def experiment():
        return {name: fn() for name, fn in SCENARIOS}

    results = run_once(benchmark, experiment)

    rows = []
    failures = []
    for name, _ in SCENARIOS:
        r = results[name]
        ratio = r["fast"] / r["baseline"]
        rows.append([name, r["ops"], round(r["baseline"]), round(r["fast"]),
                     round(ratio, 2), FLOORS[name]])
        if ratio < FLOORS[name]:
            failures.append(f"{name}: {ratio:.2f}x < floor {FLOORS[name]}x")

    figure_output(
        "kernel_throughput",
        "Simulation hot-path throughput — fast path vs measured-in-job "
        "baseline (fast_path=False)",
        ["scenario", "ops", "baseline ops/s", "fast ops/s", "speedup",
         "floor"],
        rows,
    )
    assert not failures, "throughput floor violated: " + "; ".join(failures)
