"""Transparency score: per-knob policy recovery, black-box vs gray-box.

The paper's quantitative bottom line for this reproduction: build
firmware from random six-knob policy points, recover the knobs from
outside the device, and tabulate per-knob recovery rates at the two
access levels the paper contrasts (§2 host-interface tooling vs §3
probing/JTAG).  Gray-box access must recover strictly more than the
host interface, and the structural knobs (``gc_policy``,
``allocation``) must be near-perfectly recoverable gray-box — the
paper's claim that the information exists and only access is missing.
"""

import pytest

from benchmarks.conftest import run_once
from repro.exp import Runner
from repro.infer import run_transparency_sweep

N_POINTS = 8
SEED = 42


def score_sweep():
    return run_transparency_sweep(
        N_POINTS, seed=SEED, runner=Runner(jobs=1, cache=None))


@pytest.mark.benchmark(group="transparency")
def test_transparency_score(benchmark, figure_output):
    score = run_once(benchmark, score_sweep)
    print("\n" + score.render())
    figure_output(
        "fig_transparency_score",
        "Transparency score — per-knob recovery over "
        f"{N_POINTS} random policy points",
        ["knob", "points", "blackbox_recovered", "graybox_recovered",
         "blackbox_rate", "graybox_rate"],
        score.rows(),
    )
    # Gray-box access strictly dominates the host interface.
    assert score.graybox_total > score.blackbox_total
    # The structural knobs are near-perfectly recoverable gray-box.
    for knob in ("gc_policy", "allocation"):
        assert score.knob_score(knob).graybox_recovered >= N_POINTS - 1
    # Some knob must be invisible black-box (the transparency gap).
    assert any(s.blackbox_recovered == 0 for s in score.scores())
