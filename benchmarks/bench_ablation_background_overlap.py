"""Ablation: scheduled background maintenance overlapping host idle gaps.

``bench_ablation_background_ops`` shows the *blocking* form: an explicit
``idle()`` call does maintenance and the next request pays for it.  The
sim-kernel rebuild adds the scheduled form
(:meth:`~repro.ssd.timed.TimedSSD.enable_background_maintenance`): a
kernel process wakes during host idle gaps and does maintenance there,
with no host-side call at all — the way real firmware hides GC debt.

A bursty host (sync write bursts separated by quiet gaps) runs against
two otherwise-identical devices.  With overlap enabled, idle GC pays
down reclaim debt inside the gaps, and the extreme write tail — the
bursts that land on a GC storm — shrinks.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.ssd.presets import tiny
from repro.ssd.timed import BackgroundPolicy, TimedSSD

BURSTS = 40
BURST_WRITES = 150
GAP_NS = 5_000_000
SEED = 9


def run_bursty(background: bool):
    device = TimedSSD(tiny())
    if background:
        device.enable_background_maintenance(BackgroundPolicy(
            idle_threshold_ns=1_000_000,
            check_interval_ns=1_000_000,
            max_blocks=4,
        ))
    rng = np.random.default_rng(SEED)
    latencies = []
    for _ in range(BURSTS):
        for _ in range(BURST_WRITES):
            request = device.write_sectors(
                int(rng.integers(device.num_sectors)), 1)
            latencies.append(request.latency_us)
        device.now = device.now + GAP_NS  # the host goes quiet
    return device, np.asarray(latencies)


@pytest.mark.benchmark(group="ablation-background")
def test_background_overlap_pays_gc_debt_in_gaps(benchmark, figure_output):
    def experiment():
        return run_bursty(False), run_bursty(True)

    (quiet_dev, quiet_lat), (bg_dev, bg_lat) = run_once(benchmark, experiment)

    def row(tag, device, lat):
        stats = device.ftl.stats
        return [tag, stats.idle_gc_blocks,
                round(float(np.percentile(lat, 50)), 1),
                round(float(np.percentile(lat, 99)), 1),
                round(float(np.percentile(lat, 99.9)), 1)]

    figure_output(
        "ablation_background_overlap",
        "Ablation — maintenance overlapping idle gaps (bursty host)",
        ["maintenance", "idle GC blocks", "p50 (us)", "p99 (us)",
         "p99.9 (us)"],
        [row("none", quiet_dev, quiet_lat),
         row("scheduled overlap", bg_dev, bg_lat)],
    )
    # Maintenance really ran inside the gaps, without any idle() call...
    assert quiet_dev.ftl.stats.idle_gc_blocks == 0
    assert bg_dev.ftl.stats.idle_gc_blocks > 0
    # ...and paying GC debt there shrinks the extreme write tail.
    assert (np.percentile(bg_lat, 99.9) < np.percentile(quiet_lat, 99.9))
