"""Ablations: mapping RAM, RAIN stripe width, and pSLC buffering.

Each sweep isolates one mechanism DESIGN.md calls out and shows its
first-order effect — the kind of sensitivity a vendor datasheet never
reveals and the paper argues the community needs.

Every sweep point is an independent device, so each sweep fans its
points out through :class:`repro.exp.Runner` as picklable cells.
"""

import pytest

from benchmarks.conftest import run_once
from repro.exp import (
    Cell,
    ChurnCell,
    NandPageSweepCell,
    PslcBurstCell,
    Runner,
    run_churn_cell,
    run_nand_page_sweep_cell,
    run_pslc_burst_cell,
)
from repro.ssd.presets import mx500_like, tiny


@pytest.mark.benchmark(group="ablation-mapping")
def test_ablation_mapping_dirty_budget(benchmark, figure_output):
    """Less RAM for dirty translation pages -> more metadata writes.

    This is the mechanism behind the Fig 4b mixed-run surprise; the
    sweep shows it directly by shrinking the budget below the
    workload's dirty-TP working set.
    """
    limits = (2, 4, 8, 32)

    def experiment():
        cells = [
            Cell(
                run_churn_cell,
                ChurnCell(
                    config=tiny().with_changes(
                        mapping_tp_lpns=16,       # many small TPs
                        mapping_dirty_tp_limit=limit,
                        mapping_sync_interval=100_000,  # evictions only
                    ),
                    writes=8000,
                    pattern="uniform",
                ),
                seed=9,
                label=f"mapping:limit={limit}",
            )
            for limit in limits
        ]
        results = Runner().run(cells)
        return {
            limit: r.meta_program_pages for limit, r in zip(limits, results)
        }

    results = run_once(benchmark, experiment)
    figure_output(
        "ablation_mapping_budget",
        "Ablation — dirty-TP RAM budget vs metadata page writes",
        ["dirty TP budget", "meta pages"],
        [[k, v] for k, v in results.items()],
    )
    assert results[2] > results[32]


@pytest.mark.benchmark(group="ablation-rain")
def test_ablation_rain_stripe_width(benchmark, figure_output):
    """Fig 4a's plateau moves with the stripe: k/(k+1) of the page."""
    stripes = (0, 3, 7, 15)

    def experiment():
        sector = mx500_like(scale=4).geometry.sector_size
        sizes = tuple(sector * (1 << i) for i in range(5, 10))
        cells = [
            Cell(
                run_nand_page_sweep_cell,
                NandPageSweepCell(
                    config=mx500_like(scale=4).with_changes(rain_stripe=stripe),
                    sizes_bytes=sizes,
                ),
                label=f"rain:stripe={stripe}",
            )
            for stripe in stripes
        ]
        results = Runner().run(cells)
        return dict(zip(stripes, results))

    results = run_once(benchmark, experiment)
    page = mx500_like(scale=4).geometry.page_size
    rows = []
    for stripe, measured in results.items():
        predicted = page if stripe == 0 else page * stripe / (stripe + 1)
        rows.append([stripe, round(measured), round(predicted)])
    figure_output(
        "ablation_rain_stripe",
        "Ablation — RAIN stripe width vs host-bytes-per-NAND-page plateau",
        ["stripe (k data : 1 parity)", "measured B/page", "k/(k+1) * page"],
        rows,
    )
    for stripe, measured in results.items():
        predicted = page if stripe == 0 else page * stripe / (stripe + 1)
        assert measured == pytest.approx(predicted, rel=0.1)


@pytest.mark.benchmark(group="ablation-pslc")
def test_ablation_pslc_burst_absorption(benchmark, figure_output):
    """A pSLC buffer absorbs a write burst; the drain shows up later as
    FTL-attributed traffic (the 'unpredictable background operations'
    family)."""
    buffer_sizes = (0, 8)

    def experiment():
        cells = [
            Cell(
                run_pslc_burst_cell,
                PslcBurstCell(
                    config=tiny().with_changes(pslc_blocks=pslc_blocks,
                                               pslc_drain_threshold=0.95),
                    burst_sectors=160,
                ),
                label=f"pslc:blocks={pslc_blocks}",
            )
            for pslc_blocks in buffer_sizes
        ]
        results = Runner().run(cells)
        return dict(zip(buffer_sizes, results))

    results = run_once(benchmark, experiment)
    figure_output(
        "ablation_pslc",
        "Ablation — pSLC buffer vs burst write latency",
        ["pSLC blocks", "mean burst latency (us)", "pSLC drain pages"],
        [[k, round(v[0], 1), v[1]] for k, v in results.items()],
    )
    assert results[8][0] <= results[0][0] * 1.2
