"""Ablations: mapping RAM, RAIN stripe width, and pSLC buffering.

Each sweep isolates one mechanism DESIGN.md calls out and shows its
first-order effect — the kind of sensitivity a vendor datasheet never
reveals and the paper argues the community needs.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.core.blackbox.nand_page import sequential_write_sweep
from repro.ssd.device import SimulatedSSD
from repro.ssd.presets import mx500_like, tiny
from repro.ssd.timed import TimedSSD


@pytest.mark.benchmark(group="ablation-mapping")
def test_ablation_mapping_dirty_budget(benchmark, figure_output):
    """Less RAM for dirty translation pages -> more metadata writes.

    This is the mechanism behind the Fig 4b mixed-run surprise; the
    sweep shows it directly by shrinking the budget below the
    workload's dirty-TP working set.
    """

    def experiment():
        results = {}
        for limit in (2, 4, 8, 32):
            config = tiny().with_changes(
                mapping_tp_lpns=16,       # many small TPs
                mapping_dirty_tp_limit=limit,
                mapping_sync_interval=100_000,  # evictions only
            )
            device = SimulatedSSD(config)
            rng = np.random.default_rng(9)
            for _ in range(8000):
                device.write_sectors(int(rng.integers(device.num_sectors)), 1)
            device.flush()
            results[limit] = device.smart.meta_program_pages
        return results

    results = run_once(benchmark, experiment)
    figure_output(
        "ablation_mapping_budget",
        "Ablation — dirty-TP RAM budget vs metadata page writes",
        ["dirty TP budget", "meta pages"],
        [[k, v] for k, v in results.items()],
    )
    assert results[2] > results[32]


@pytest.mark.benchmark(group="ablation-rain")
def test_ablation_rain_stripe_width(benchmark, figure_output):
    """Fig 4a's plateau moves with the stripe: k/(k+1) of the page."""

    def experiment():
        out = {}
        for stripe in (0, 3, 7, 15):
            config = mx500_like(scale=4).with_changes(rain_stripe=stripe)
            device = SimulatedSSD(config)
            sector = device.sector_size
            estimate = sequential_write_sweep(
                device, sizes_bytes=[sector * (1 << i) for i in range(5, 10)]
            )
            out[stripe] = estimate.converged_bytes_per_page
        return out

    results = run_once(benchmark, experiment)
    page = mx500_like(scale=4).geometry.page_size
    rows = []
    for stripe, measured in results.items():
        predicted = page if stripe == 0 else page * stripe / (stripe + 1)
        rows.append([stripe, round(measured), round(predicted)])
    figure_output(
        "ablation_rain_stripe",
        "Ablation — RAIN stripe width vs host-bytes-per-NAND-page plateau",
        ["stripe (k data : 1 parity)", "measured B/page", "k/(k+1) * page"],
        rows,
    )
    for stripe, measured in results.items():
        predicted = page if stripe == 0 else page * stripe / (stripe + 1)
        assert measured == pytest.approx(predicted, rel=0.1)


@pytest.mark.benchmark(group="ablation-pslc")
def test_ablation_pslc_burst_absorption(benchmark, figure_output):
    """A pSLC buffer absorbs a write burst; the drain shows up later as
    FTL-attributed traffic (the 'unpredictable background operations'
    family)."""

    def experiment():
        out = {}
        for pslc_blocks in (0, 8):
            config = tiny().with_changes(pslc_blocks=pslc_blocks,
                                         pslc_drain_threshold=0.95)
            device = TimedSSD(config)
            lat = []
            for lba in range(0, min(160, device.num_sectors), 1):
                request = device.submit("write", lba, 1, at_ns=device.now)
                lat.append(request.latency_us)
            out[pslc_blocks] = (float(np.mean(lat)),
                                device.smart.pslc_program_pages)
        return out

    results = run_once(benchmark, experiment)
    figure_output(
        "ablation_pslc",
        "Ablation — pSLC buffer vs burst write latency",
        ["pSLC blocks", "mean burst latency (us)", "pSLC drain pages"],
        [[k, round(v[0], 1), v[1]] for k, v in results.items()],
    )
    assert results[8][0] <= results[0][0] * 1.2
